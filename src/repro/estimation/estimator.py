"""Execution-time estimator families.

All estimators are trained per layer *kind* (conv, fc, ...), as the paper
does, from :class:`~repro.profiling.profiler.ContentionSample` datasets.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import defaultdict

import numpy as np

from repro.dnn.graph import LayerInfo
from repro.dnn.layer import LayerKind
from repro.ml.forest import RandomForestRegressor
from repro.ml.linear import BestOfLinearLog
from repro.estimation.features import (
    build_matrix,
    layer_features,
    sample_features,
    sample_matrix,
    stats_features,
    stats_matrix,
)
from repro.profiling.gpu_stats import GpuStats
from repro.profiling.profiler import ContentionSample


def _group_by_kind(
    samples: list[ContentionSample],
) -> dict[LayerKind, list[ContentionSample]]:
    groups: dict[LayerKind, list[ContentionSample]] = defaultdict(list)
    for sample in samples:
        groups[sample.info.kind].append(sample)
    return dict(groups)


def _forest_rowwise_mean(
    model: RandomForestRegressor, X: np.ndarray
) -> np.ndarray:
    """Ensemble mean per row, bit-identical to single-row ``predict``.

    The transpose makes each row's tree predictions contiguous, so the
    reduction uses the same pairwise summation a ``(n_trees, 1)`` scalar
    call gets — batched estimates therefore agree with the per-sample
    scalar path to the last bit (see RandomForestRegressor.predict_per_tree).
    """
    per_tree = model.predict_per_tree(X)
    return np.ascontiguousarray(per_tree.T).mean(axis=1)


def _group_by_nearest_load(
    samples: list[ContentionSample],
    models: dict[LayerKind, dict[int, "BestOfLinearLog"]],
) -> dict[tuple[LayerKind, int], list[int]]:
    """Sample indices grouped by (kind, nearest trained load level) — one
    linear-model matrix call per group instead of one per sample."""
    groups: dict[tuple[LayerKind, int], list[int]] = {}
    for i, sample in enumerate(samples):
        kind = sample.info.kind
        if kind not in models:
            raise KeyError(f"no model trained for layer kind {kind}")
        by_load = models[kind]
        nearest = min(
            by_load, key=lambda load: abs(load - sample.stats.num_clients)
        )
        groups.setdefault((kind, nearest), []).append(i)
    return groups


class ExecutionTimeEstimator(ABC):
    """Predicts a layer's contended execution time on a given server."""

    name: str = "base"

    @abstractmethod
    def fit(self, samples: list[ContentionSample]) -> "ExecutionTimeEstimator":
        """Train from profiled samples."""

    @abstractmethod
    def predict(self, info: LayerInfo, stats: GpuStats) -> float:
        """Predicted execution time (seconds) of ``info`` under ``stats``."""

    def predict_batch(
        self, samples: list[ContentionSample]
    ) -> np.ndarray:
        """Predicted times for many samples at once.

        The base implementation loops over :meth:`predict`; vectorizing
        subclasses override it with grouped matrix predictions that agree
        with the scalar path element-for-element.
        """
        return np.array([self.predict(s.info, s.stats) for s in samples])


class RFWithLoadEstimator(ExecutionTimeEstimator):
    """PerDNN's estimator: random forest on layer + GPU workload features."""

    name = "RF w/ server load info"

    def __init__(
        self,
        n_estimators: int = 40,
        max_depth: int = 16,
        rng: np.random.Generator | None = None,
    ) -> None:
        self._n_estimators = n_estimators
        self._max_depth = max_depth
        self._rng = rng or np.random.default_rng()
        self._models: dict[LayerKind, RandomForestRegressor] = {}

    def fit(self, samples: list[ContentionSample]) -> "RFWithLoadEstimator":
        for kind, group in _group_by_kind(samples).items():
            X, y = build_matrix(group, with_load=True)
            model = RandomForestRegressor(
                n_estimators=self._n_estimators,
                max_depth=self._max_depth,
                # All features per split: with only 8 features, the
                # multiplicative layer-size x load interaction needs every
                # split to see both feature groups; bootstrap still
                # decorrelates the trees.
                max_features=None,
                rng=self._rng,
            )
            self._models[kind] = model.fit(X, y)
        return self

    def predict(self, info: LayerInfo, stats: GpuStats) -> float:
        model = self._require_model(info.kind)
        x = np.concatenate([layer_features(info), stats_features(stats)])
        return float(model.predict(x[None, :])[0])

    def predict_batch(
        self, samples: list[ContentionSample]
    ) -> np.ndarray:
        """One forest call per layer kind over a matrix-built feature
        block, scattered back into sample order."""
        out = np.empty(len(samples))
        by_kind: dict[LayerKind, list[int]] = defaultdict(list)
        for i, sample in enumerate(samples):
            by_kind[sample.info.kind].append(i)
        for kind, indices in by_kind.items():
            model = self._require_model(kind)
            X = sample_matrix([samples[i] for i in indices], with_load=True)
            out[indices] = _forest_rowwise_mean(model, X)
        return out

    def feature_importances(self, kind: LayerKind) -> np.ndarray:
        model = self._require_model(kind)
        assert model.feature_importances_ is not None
        return model.feature_importances_

    def _require_model(self, kind: LayerKind) -> RandomForestRegressor:
        if kind not in self._models:
            raise KeyError(f"no model trained for layer kind {kind}")
        return self._models[kind]


class LLWithLoadEstimator(ExecutionTimeEstimator):
    """The paper's first ablation: the same per-load LL models as the
    NeuroSurgeon baseline, but with GPU workload statistics added to the
    features ("we trained the same LL models but with GPU statistics as
    well as layer hyperparameters")."""

    name = "LL w/ server load info"

    def __init__(self) -> None:
        self._models: dict[LayerKind, dict[int, BestOfLinearLog]] = {}

    def fit(self, samples: list[ContentionSample]) -> "LLWithLoadEstimator":
        for kind, group in _group_by_kind(samples).items():
            by_load: dict[int, list[ContentionSample]] = defaultdict(list)
            for sample in group:
                by_load[sample.stats.num_clients].append(sample)
            self._models[kind] = {}
            for load, load_group in by_load.items():
                X, y = build_matrix(load_group, with_load=True)
                self._models[kind][load] = BestOfLinearLog().fit(X, y)
        return self

    def predict(self, info: LayerInfo, stats: GpuStats) -> float:
        if info.kind not in self._models:
            raise KeyError(f"no model trained for layer kind {info.kind}")
        by_load = self._models[info.kind]
        nearest = min(by_load, key=lambda load: abs(load - stats.num_clients))
        x = np.concatenate([layer_features(info), stats_features(stats)])
        return float(by_load[nearest].predict(x[None, :])[0])

    def predict_batch(
        self, samples: list[ContentionSample]
    ) -> np.ndarray:
        out = np.empty(len(samples))
        for (kind, load), indices in _group_by_nearest_load(
            samples, self._models
        ).items():
            X = sample_matrix([samples[i] for i in indices], with_load=True)
            out[indices] = self._models[kind][load].predict(X)
        return out


class LLPerLoadEstimator(ExecutionTimeEstimator):
    """NeuroSurgeon baseline: LL on layer features, one model per load level.

    The paper trains "different models for each server load (~ number of
    clients), as described in their paper".  At prediction time the model
    for the nearest trained client count is used; GPU statistics beyond the
    client count are ignored.
    """

    name = "LL"

    def __init__(self) -> None:
        self._models: dict[LayerKind, dict[int, BestOfLinearLog]] = {}

    def fit(self, samples: list[ContentionSample]) -> "LLPerLoadEstimator":
        for kind, group in _group_by_kind(samples).items():
            by_load: dict[int, list[ContentionSample]] = defaultdict(list)
            for sample in group:
                by_load[sample.stats.num_clients].append(sample)
            self._models[kind] = {}
            for load, load_group in by_load.items():
                X = np.stack(
                    [sample_features(s, with_load=False) for s in load_group]
                )
                y = np.array([s.measured_time for s in load_group])
                self._models[kind][load] = BestOfLinearLog().fit(X, y)
        return self

    def predict(self, info: LayerInfo, stats: GpuStats) -> float:
        if info.kind not in self._models:
            raise KeyError(f"no model trained for layer kind {info.kind}")
        by_load = self._models[info.kind]
        nearest = min(by_load, key=lambda load: abs(load - stats.num_clients))
        x = layer_features(info)
        return float(by_load[nearest].predict(x[None, :])[0])

    def predict_batch(
        self, samples: list[ContentionSample]
    ) -> np.ndarray:
        out = np.empty(len(samples))
        for (kind, load), indices in _group_by_nearest_load(
            samples, self._models
        ).items():
            X = sample_matrix([samples[i] for i in indices], with_load=False)
            out[indices] = self._models[kind][load].predict(X)
        return out


class ContentionEstimator:
    """GPU-stats -> slowdown-factor regressor for online planning.

    The simulator's master server holds each model's uncontended per-layer
    profile; multiplying it by the predicted slowdown yields the server-side
    layer times used for partitioning.  This is the distilled form of the
    per-kind estimators, cheap enough to apply to hundreds of servers per
    planning round.
    """

    def __init__(
        self,
        n_estimators: int = 20,
        max_depth: int = 8,
        rng: np.random.Generator | None = None,
    ) -> None:
        self._rng = rng or np.random.default_rng()
        self._model = RandomForestRegressor(
            n_estimators=n_estimators, max_depth=max_depth, rng=self._rng
        )
        self._fitted = False

    def fit(self, samples: list[ContentionSample]) -> "ContentionEstimator":
        usable = [s for s in samples if s.base_time > 0]
        if not usable:
            raise ValueError("no samples with positive base time")
        X = np.stack([stats_features(s.stats) for s in usable])
        y = np.array([s.measured_time / s.base_time for s in usable])
        self._model.fit(X, y)
        self._fitted = True
        return self

    def predict_slowdown(self, stats: GpuStats) -> float:
        if not self._fitted:
            raise RuntimeError("estimator has not been fitted")
        x = stats_features(stats)
        return max(1.0, float(self._model.predict(x[None, :])[0]))

    def predict_slowdown_batch(self, stats_list: list[GpuStats]) -> np.ndarray:
        """Slowdown factors for many pinged servers in one forest call.

        Element ``i`` is bit-identical to ``predict_slowdown(stats_list[i])``
        — including the per-element ``max(1.0, ·)`` clamp — so the master
        can swap the per-server scalar loop for this without changing any
        same-seed simulation output.
        """
        if not self._fitted:
            raise RuntimeError("estimator has not been fitted")
        if not stats_list:
            return np.empty(0)
        X = stats_matrix(stats_list)
        return np.maximum(1.0, _forest_rowwise_mean(self._model, X))

    def predict_time(self, base_time: float, stats: GpuStats) -> float:
        return base_time * self.predict_slowdown(stats)
