"""Extended model zoo: classic architectures beyond the paper's three.

The paper evaluates MobileNet v1, Inception-21k, and ResNet-50
(:mod:`repro.dnn.models`).  These additional reconstructions broaden the
structural variety the partitioner is exercised on:

* **AlexNet** — tiny layer count, enormous fc tail (~85 % of its 244 MB):
  the extreme case for fractional migration.
* **VGG-16** — deep uniform conv stacks plus a 400 MB fc6: the heaviest
  model, the worst case for cold starts.
* **SqueezeNet v1.0** — fire modules (squeeze/expand concat DAG), 5 MB:
  the model that barely needs PerDNN at all.
"""

from __future__ import annotations

from repro.dnn.graph import DNNGraph
from repro.dnn.layer import Layer, LayerKind, TensorShape
from repro.dnn.models import _Builder


def _lrn(builder: _Builder, name: str, inp: str) -> str:
    builder.graph.add(Layer(name, LayerKind.LRN), [inp])
    return name


def _plain_conv(
    builder: _Builder, name: str, inp: str, out_channels: int, kernel: int,
    stride: int = 1, padding: int = 0, groups: int = 1,
) -> str:
    """conv + relu without bn/scale (pre-batch-norm era architectures)."""
    builder.graph.add(
        Layer(
            name, LayerKind.CONV, out_channels=out_channels, kernel=kernel,
            stride=stride, padding=padding, groups=groups,
        ),
        [inp],
    )
    builder.graph.add(Layer(f"{name}/relu", LayerKind.RELU), [name])
    return f"{name}/relu"


def alexnet(num_classes: int = 1000) -> DNNGraph:
    """AlexNet (Krizhevsky 2012), Caffe layout with grouped convolutions."""
    b = _Builder("alexnet", TensorShape(3, 227, 227))
    head = _plain_conv(b, "conv1", "data", 96, kernel=11, stride=4)
    head = _lrn(b, "norm1", head)
    head = b.pool("pool1", head, LayerKind.POOL_MAX, kernel=3, stride=2)
    head = _plain_conv(b, "conv2", head, 256, kernel=5, padding=2, groups=2)
    head = _lrn(b, "norm2", head)
    head = b.pool("pool2", head, LayerKind.POOL_MAX, kernel=3, stride=2)
    head = _plain_conv(b, "conv3", head, 384, kernel=3, padding=1)
    head = _plain_conv(b, "conv4", head, 384, kernel=3, padding=1, groups=2)
    head = _plain_conv(b, "conv5", head, 256, kernel=3, padding=1, groups=2)
    head = b.pool("pool5", head, LayerKind.POOL_MAX, kernel=3, stride=2)
    head = b.fc("fc6", head, 4096)
    b.graph.add(Layer("fc6/relu", LayerKind.RELU), [head])
    b.graph.add(Layer("fc6/drop", LayerKind.DROPOUT), ["fc6/relu"])
    head = b.fc("fc7", "fc6/drop", 4096)
    b.graph.add(Layer("fc7/relu", LayerKind.RELU), [head])
    b.graph.add(Layer("fc7/drop", LayerKind.DROPOUT), ["fc7/relu"])
    head = b.fc("fc8", "fc7/drop", num_classes)
    b.softmax("prob", head)
    return b.finish()


_VGG16_STAGES = ((64, 2), (128, 2), (256, 3), (512, 3), (512, 3))


def vgg16(num_classes: int = 1000) -> DNNGraph:
    """VGG-16 (Simonyan & Zisserman 2014): uniform 3x3 conv stacks."""
    b = _Builder("vgg16", TensorShape(3, 224, 224))
    head = "data"
    for stage, (channels, convs) in enumerate(_VGG16_STAGES, start=1):
        for i in range(1, convs + 1):
            head = _plain_conv(
                b, f"conv{stage}_{i}", head, channels, kernel=3, padding=1
            )
        head = b.pool(
            f"pool{stage}", head, LayerKind.POOL_MAX, kernel=2, stride=2
        )
    head = b.fc("fc6", head, 4096)
    b.graph.add(Layer("fc6/relu", LayerKind.RELU), [head])
    b.graph.add(Layer("fc6/drop", LayerKind.DROPOUT), ["fc6/relu"])
    head = b.fc("fc7", "fc6/drop", 4096)
    b.graph.add(Layer("fc7/relu", LayerKind.RELU), [head])
    b.graph.add(Layer("fc7/drop", LayerKind.DROPOUT), ["fc7/relu"])
    head = b.fc("fc8", "fc7/drop", num_classes)
    b.softmax("prob", head)
    return b.finish()


# (squeeze 1x1, expand 1x1, expand 3x3) channels per fire module.
_SQUEEZENET_FIRES = (
    ("fire2", 16, 64, 64),
    ("fire3", 16, 64, 64),
    ("fire4", 32, 128, 128),
    ("fire5", 32, 128, 128),
    ("fire6", 48, 192, 192),
    ("fire7", 48, 192, 192),
    ("fire8", 64, 256, 256),
    ("fire9", 64, 256, 256),
)
_SQUEEZENET_POOL_AFTER = {"fire4", "fire8"}


def _fire(builder: _Builder, name: str, inp: str, squeeze: int,
          expand1: int, expand3: int) -> str:
    head = _plain_conv(builder, f"{name}/squeeze1x1", inp, squeeze, kernel=1)
    left = _plain_conv(builder, f"{name}/expand1x1", head, expand1, kernel=1)
    right = _plain_conv(
        builder, f"{name}/expand3x3", head, expand3, kernel=3, padding=1
    )
    return builder.concat(f"{name}/concat", [left, right])


def squeezenet(num_classes: int = 1000) -> DNNGraph:
    """SqueezeNet v1.0 (Iandola 2016): fire-module DAG, ~5 MB of weights."""
    b = _Builder("squeezenet", TensorShape(3, 224, 224))
    head = _plain_conv(b, "conv1", "data", 96, kernel=7, stride=2)
    head = b.pool("pool1", head, LayerKind.POOL_MAX, kernel=3, stride=2)
    for name, squeeze, expand1, expand3 in _SQUEEZENET_FIRES:
        head = _fire(b, name, head, squeeze, expand1, expand3)
        if name in _SQUEEZENET_POOL_AFTER:
            head = b.pool(
                f"pool_{name}", head, LayerKind.POOL_MAX, kernel=3, stride=2
            )
    b.graph.add(Layer("drop9", LayerKind.DROPOUT), [head])
    head = _plain_conv(b, "conv10", "drop9", num_classes, kernel=1)
    head = b.global_pool("pool10", head)
    b.softmax("prob", head)
    return b.finish()


EXTRA_MODEL_BUILDERS = {
    "alexnet": alexnet,
    "vgg16": vgg16,
    "squeezenet": squeezenet,
}
