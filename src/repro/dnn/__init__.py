"""DNN model substrate: layers, graphs, FLOP accounting, and a model zoo.

The partitioning and simulation layers of PerDNN never execute real tensors;
they consume layer *hyperparameters*, weight sizes, tensor sizes, and FLOP
counts.  This package provides exactly that: a structural model of a deep
neural network as a DAG of layers with full shape inference and byte/FLOP
accounting, plus faithful reconstructions of the three models the paper
evaluates (Table I).
"""

from repro.dnn.layer import Layer, LayerKind, TensorShape
from repro.dnn.graph import DNNGraph
from repro.dnn.models import (
    MODEL_BUILDERS,
    build_model,
    inception_21k,
    mobilenet_v1,
    resnet50,
    tiny_branchy_dnn,
    tiny_linear_dnn,
)
from repro.dnn.weights import WeightStore
from repro.dnn.execution import NumpyExecutor

__all__ = [
    "Layer",
    "LayerKind",
    "TensorShape",
    "DNNGraph",
    "MODEL_BUILDERS",
    "build_model",
    "mobilenet_v1",
    "inception_21k",
    "resnet50",
    "tiny_linear_dnn",
    "tiny_branchy_dnn",
    "WeightStore",
    "NumpyExecutor",
]
