"""The DNN DAG container with shape inference and byte/FLOP accounting.

A :class:`DNNGraph` owns an ordered set of :class:`~repro.dnn.layer.Layer`
objects plus the directed edges between them.  On :meth:`freeze` it validates
the structure (single connected DAG, exactly one input, one output), runs
shape inference in topological order, and caches a :class:`LayerInfo` per
layer — the per-layer facts every other subsystem (profiling, partitioning,
simulation) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dnn.layer import Layer, LayerKind, TensorShape


@dataclass(frozen=True)
class LayerInfo:
    """Resolved, graph-dependent facts about one layer."""

    name: str
    kind: LayerKind
    index: int  # position in topological order
    input_shapes: tuple[TensorShape, ...]
    output_shape: TensorShape
    weight_bytes: int
    flops: int

    @property
    def input_bytes(self) -> int:
        return sum(shape.nbytes for shape in self.input_shapes)

    @property
    def output_bytes(self) -> int:
        return self.output_shape.nbytes


class DNNGraph:
    """A directed acyclic graph of DNN layers.

    Build with :meth:`add` (supplying predecessor layer names), then call
    :meth:`freeze`.  Frozen graphs are immutable and expose topological
    order, per-layer :class:`LayerInfo`, and whole-model aggregates.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._layers: dict[str, Layer] = {}
        self._preds: dict[str, list[str]] = {}
        self._succs: dict[str, list[str]] = {}
        self._frozen = False
        self._topo_order: list[str] = []
        self._info: dict[str, LayerInfo] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, layer: Layer, inputs: list[str] | None = None) -> Layer:
        """Add ``layer`` fed by the named predecessor layers.

        Returns the layer, so builders can chain on ``.name``.
        """
        if self._frozen:
            raise RuntimeError(f"{self.name}: cannot add layers to a frozen graph")
        layer.validate()
        if layer.name in self._layers:
            raise ValueError(f"{self.name}: duplicate layer name {layer.name!r}")
        inputs = list(inputs or [])
        if layer.kind is LayerKind.INPUT and inputs:
            raise ValueError(f"{layer.name}: input layers take no predecessors")
        if layer.kind is not LayerKind.INPUT and not inputs:
            raise ValueError(f"{layer.name}: non-input layer needs predecessors")
        for pred in inputs:
            if pred not in self._layers:
                raise ValueError(f"{layer.name}: unknown predecessor {pred!r}")
        self._layers[layer.name] = layer
        self._preds[layer.name] = inputs
        self._succs[layer.name] = []
        for pred in inputs:
            self._succs[pred].append(layer.name)
        return layer

    def freeze(self) -> DNNGraph:
        """Validate the graph and compute all per-layer information."""
        if self._frozen:
            return self
        if not self._layers:
            raise ValueError(f"{self.name}: empty graph")
        inputs = [l.name for l in self._layers.values() if l.kind is LayerKind.INPUT]
        if len(inputs) != 1:
            raise ValueError(f"{self.name}: expected exactly 1 input layer, got {len(inputs)}")
        outputs = [name for name, succs in self._succs.items() if not succs]
        if len(outputs) != 1:
            raise ValueError(
                f"{self.name}: expected exactly 1 output layer, got {outputs}"
            )
        self._topo_order = self._topological_order()
        shapes: dict[str, TensorShape] = {}
        for index, name in enumerate(self._topo_order):
            layer = self._layers[name]
            in_shapes = [shapes[pred] for pred in self._preds[name]]
            out_shape = layer.output_shape(in_shapes)
            shapes[name] = out_shape
            self._info[name] = LayerInfo(
                name=name,
                kind=layer.kind,
                index=index,
                input_shapes=tuple(in_shapes),
                output_shape=out_shape,
                weight_bytes=layer.weight_bytes(in_shapes),
                flops=layer.flops(in_shapes),
            )
        self._frozen = True
        return self

    def _topological_order(self) -> list[str]:
        """Kahn's algorithm; raises on cycles or disconnected layers."""
        in_degree = {name: len(preds) for name, preds in self._preds.items()}
        ready = sorted(name for name, degree in in_degree.items() if degree == 0)
        order: list[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            for succ in self._succs[name]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._layers):
            stuck = sorted(set(self._layers) - set(order))
            raise ValueError(f"{self.name}: cycle or unreachable layers: {stuck}")
        return order

    # ------------------------------------------------------------------
    # Frozen accessors
    # ------------------------------------------------------------------
    def _require_frozen(self) -> None:
        if not self._frozen:
            raise RuntimeError(f"{self.name}: graph must be frozen first")

    @property
    def frozen(self) -> bool:
        return self._frozen

    @property
    def topo_order(self) -> list[str]:
        self._require_frozen()
        return list(self._topo_order)

    @property
    def input_name(self) -> str:
        self._require_frozen()
        return self._topo_order[0]

    @property
    def output_name(self) -> str:
        self._require_frozen()
        return self._topo_order[-1]

    def layer(self, name: str) -> Layer:
        return self._layers[name]

    def info(self, name: str) -> LayerInfo:
        self._require_frozen()
        return self._info[name]

    def infos(self) -> list[LayerInfo]:
        """All layers' info in topological order."""
        self._require_frozen()
        return [self._info[name] for name in self._topo_order]

    def predecessors(self, name: str) -> list[str]:
        return list(self._preds[name])

    def successors(self, name: str) -> list[str]:
        return list(self._succs[name])

    def __contains__(self, name: str) -> bool:
        return name in self._layers

    def __len__(self) -> int:
        return len(self._layers)

    def __iter__(self):
        self._require_frozen()
        return iter(self._topo_order)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def total_weight_bytes(self) -> int:
        self._require_frozen()
        return sum(info.weight_bytes for info in self._info.values())

    @property
    def total_flops(self) -> int:
        self._require_frozen()
        return sum(info.flops for info in self._info.values())

    @property
    def size_mb(self) -> float:
        return self.total_weight_bytes / (1024 * 1024)

    def summary(self) -> str:
        """Human-readable one-line-per-layer dump (debugging aid)."""
        self._require_frozen()
        lines = [f"{self.name}: {len(self)} layers, {self.size_mb:.1f} MB, "
                 f"{self.total_flops / 1e9:.2f} GFLOPs"]
        for info in self.infos():
            lines.append(
                f"  [{info.index:3d}] {info.name:<28s} {info.kind.value:<15s} "
                f"out={info.output_shape!s:<14s} w={info.weight_bytes / 1024:8.1f}KB "
                f"flops={info.flops / 1e6:9.2f}M"
            )
        return "\n".join(lines)
