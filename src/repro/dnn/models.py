"""Model zoo: structural reconstructions of the paper's evaluation models.

Table I of the paper lists three Caffe models:

====================  ========  ========  =========================================
Name                  # layers  size(MB)  description
====================  ========  ========  =========================================
MobileNet             110       16        MobileNet v1, 1k-class classification
Inception             312       128       Inception-BN, 21k-class classification
ResNet                245       98        ResNet-50, 1k-class classification
====================  ========  ========  =========================================

The builders below reconstruct the published architectures layer by layer
(with Caffe's convention that batch-norm, its affine scale, and ReLU are
separate layers), so layer counts and total weight bytes land within a few
percent of Table I.  The exact counts our reconstructions produce are
reported by ``benchmarks/bench_table1_models.py`` next to the paper's.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.dnn.graph import DNNGraph
from repro.dnn.layer import Layer, LayerKind, TensorShape


class _Builder:
    """Convenience wrapper that chains Caffe-style conv units onto a graph."""

    def __init__(self, name: str, input_shape: TensorShape) -> None:
        self.graph = DNNGraph(name)
        self.graph.add(Layer("data", LayerKind.INPUT, input_shape=input_shape))
        self.head = "data"

    def _add(self, layer: Layer, inputs: list[str]) -> str:
        self.graph.add(layer, inputs)
        return layer.name

    def conv_unit(
        self,
        name: str,
        inp: str,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        relu: bool = True,
    ) -> str:
        """conv -> batch_norm -> scale [-> relu], Caffe-style."""
        head = self._add(
            Layer(
                f"{name}", LayerKind.CONV,
                out_channels=out_channels, kernel=kernel, stride=stride,
                padding=padding, groups=groups,
            ),
            [inp],
        )
        head = self._add(Layer(f"{name}/bn", LayerKind.BATCH_NORM), [head])
        head = self._add(Layer(f"{name}/scale", LayerKind.SCALE), [head])
        if relu:
            head = self._add(Layer(f"{name}/relu", LayerKind.RELU), [head])
        return head

    def pool(
        self, name: str, inp: str, kind: LayerKind, kernel: int, stride: int,
        padding: int = 0,
    ) -> str:
        return self._add(
            Layer(name, kind, kernel=kernel, stride=stride, padding=padding), [inp]
        )

    def concat(self, name: str, inputs: list[str]) -> str:
        return self._add(Layer(name, LayerKind.CONCAT), inputs)

    def add_op(self, name: str, inputs: list[str]) -> str:
        return self._add(Layer(name, LayerKind.ADD), inputs)

    def relu(self, name: str, inp: str) -> str:
        return self._add(Layer(name, LayerKind.RELU), [inp])

    def global_pool(self, name: str, inp: str) -> str:
        return self._add(Layer(name, LayerKind.GLOBAL_POOL_AVG), [inp])

    def fc(self, name: str, inp: str, out_features: int) -> str:
        return self._add(Layer(name, LayerKind.FC, out_features=out_features), [inp])

    def softmax(self, name: str, inp: str) -> str:
        return self._add(Layer(name, LayerKind.SOFTMAX), [inp])

    def finish(self) -> DNNGraph:
        return self.graph.freeze()


# ----------------------------------------------------------------------
# MobileNet v1 (Howard et al. 2017) — 1.0x width, 224x224 input.
# ----------------------------------------------------------------------
def mobilenet_v1(num_classes: int = 1000) -> DNNGraph:
    """MobileNet v1: a conv stem plus 13 depthwise-separable blocks."""
    b = _Builder("mobilenet_v1", TensorShape(3, 224, 224))
    head = b.conv_unit("conv1", "data", 32, kernel=3, stride=2, padding=1)
    # (out_channels of the pointwise conv, stride of the depthwise conv)
    blocks = [
        (64, 1), (128, 2), (128, 1), (256, 2), (256, 1), (512, 2),
        (512, 1), (512, 1), (512, 1), (512, 1), (512, 1), (1024, 2), (1024, 1),
    ]
    in_channels = 32
    for i, (out_channels, stride) in enumerate(blocks, start=1):
        head = b.conv_unit(
            f"conv{i}/dw", head, in_channels, kernel=3, stride=stride,
            padding=1, groups=in_channels,
        )
        head = b.conv_unit(f"conv{i}/pw", head, out_channels, kernel=1)
        in_channels = out_channels
    head = b.global_pool("pool_avg", head)
    head = b.fc("fc", head, num_classes)
    b.softmax("prob", head)
    return b.finish()


# ----------------------------------------------------------------------
# Inception-BN trained for 21 841 ImageNet-21k classes ("Inception 21k").
# ----------------------------------------------------------------------
# Per-module conv channels: (1x1, 3x3 reduce, 3x3, double-3x3 reduce,
# double-3x3 a, double-3x3 b, pool kind, pool projection).
_INCEPTION_MODULES: list[tuple[str, tuple, int]] = [
    # name, (c1, c3r, c3, cd3r, cd3a, cd3b, pool, proj), stride
    ("3a", (64, 64, 64, 64, 96, 96, "avg", 32), 1),
    ("3b", (64, 64, 96, 64, 96, 96, "avg", 64), 1),
    ("3c", (0, 128, 160, 64, 96, 96, "max", 0), 2),
    ("4a", (224, 64, 96, 96, 128, 128, "avg", 128), 1),
    ("4b", (192, 96, 128, 96, 128, 128, "avg", 128), 1),
    ("4c", (160, 128, 160, 128, 160, 160, "avg", 128), 1),
    ("4d", (96, 128, 192, 160, 192, 192, "avg", 128), 1),
    ("4e", (0, 128, 192, 192, 256, 256, "max", 0), 2),
    ("5a", (352, 192, 320, 160, 224, 224, "avg", 128), 1),
    ("5b", (352, 192, 320, 192, 224, 224, "max", 128), 1),
]


def _inception_module(b: _Builder, name: str, inp: str, cfg: tuple, stride: int) -> str:
    c1, c3r, c3, cd3r, cd3a, cd3b, pool_kind, proj = cfg
    branches: list[str] = []
    if c1:
        branches.append(b.conv_unit(f"{name}/1x1", inp, c1, kernel=1))
    head = b.conv_unit(f"{name}/3x3_reduce", inp, c3r, kernel=1)
    branches.append(
        b.conv_unit(f"{name}/3x3", head, c3, kernel=3, stride=stride, padding=1)
    )
    head = b.conv_unit(f"{name}/d3x3_reduce", inp, cd3r, kernel=1)
    head = b.conv_unit(f"{name}/d3x3a", head, cd3a, kernel=3, padding=1)
    branches.append(
        b.conv_unit(f"{name}/d3x3b", head, cd3b, kernel=3, stride=stride, padding=1)
    )
    pool_layer = LayerKind.POOL_AVG if pool_kind == "avg" else LayerKind.POOL_MAX
    pool_stride = stride if stride > 1 else 1
    head = b.pool(f"{name}/pool", inp, pool_layer, kernel=3, stride=pool_stride, padding=1)
    if proj:
        head = b.conv_unit(f"{name}/pool_proj", head, proj, kernel=1)
    branches.append(head)
    return b.concat(f"{name}/concat", branches)


def inception_21k(num_classes: int = 21841) -> DNNGraph:
    """Inception-BN with a 21 841-way classifier (the paper's 128 MB model).

    The classifier fc layer alone holds ~85 MB of weights; the conv stem at
    the front is where the compute concentrates — the structural property
    behind the paper's fractional-migration result (Fig 7, Fig 10).
    """
    b = _Builder("inception_21k", TensorShape(3, 224, 224))
    head = b.conv_unit("conv1/7x7_s2", "data", 64, kernel=7, stride=2, padding=3)
    head = b.pool("pool1/3x3_s2", head, LayerKind.POOL_MAX, kernel=3, stride=2, padding=1)
    head = b.conv_unit("conv2/1x1", head, 64, kernel=1)
    head = b.conv_unit("conv2/3x3", head, 192, kernel=3, padding=1)
    head = b.pool("pool2/3x3_s2", head, LayerKind.POOL_MAX, kernel=3, stride=2, padding=1)
    for name, cfg, stride in _INCEPTION_MODULES:
        head = _inception_module(b, f"inception_{name}", head, cfg, stride)
    head = b.global_pool("global_pool", head)
    head = b.fc("fc1", head, num_classes)
    b.softmax("prob", head)
    return b.finish()


# ----------------------------------------------------------------------
# ResNet-50 (He et al. 2016).
# ----------------------------------------------------------------------
def _bottleneck(
    b: _Builder, name: str, inp: str, mid: int, out: int, stride: int,
    downsample: bool,
) -> str:
    head = b.conv_unit(f"{name}/conv1", inp, mid, kernel=1, stride=stride)
    head = b.conv_unit(f"{name}/conv2", head, mid, kernel=3, padding=1)
    head = b.conv_unit(f"{name}/conv3", head, out, kernel=1, relu=False)
    if downsample:
        shortcut = b.conv_unit(
            f"{name}/shortcut", inp, out, kernel=1, stride=stride, relu=False
        )
    else:
        shortcut = inp
    head = b.add_op(f"{name}/add", [head, shortcut])
    return b.relu(f"{name}/relu", head)


def resnet50(num_classes: int = 1000) -> DNNGraph:
    """ResNet-50: conv stem + 4 stages of bottleneck blocks [3, 4, 6, 3]."""
    b = _Builder("resnet50", TensorShape(3, 224, 224))
    head = b.conv_unit("conv1", "data", 64, kernel=7, stride=2, padding=3)
    head = b.pool("pool1", head, LayerKind.POOL_MAX, kernel=3, stride=2, padding=1)
    stages = [(64, 256, 3, 1), (128, 512, 4, 2), (256, 1024, 6, 2), (512, 2048, 3, 2)]
    for stage_idx, (mid, out, blocks, first_stride) in enumerate(stages, start=2):
        for block_idx in range(blocks):
            stride = first_stride if block_idx == 0 else 1
            head = _bottleneck(
                b, f"res{stage_idx}{chr(ord('a') + block_idx)}", head,
                mid, out, stride, downsample=(block_idx == 0),
            )
    head = b.global_pool("pool5", head)
    head = b.fc("fc1000", head, num_classes)
    b.softmax("prob", head)
    return b.finish()


# ----------------------------------------------------------------------
# Small models for tests, examples, and fast benchmarks.
# ----------------------------------------------------------------------
def tiny_linear_dnn(depth: int = 4, channels: int = 8, spatial: int = 16) -> DNNGraph:
    """A small conv chain + classifier; cheap enough for property tests."""
    if depth < 1:
        raise ValueError("depth must be >= 1")
    b = _Builder("tiny_linear_dnn", TensorShape(3, spatial, spatial))
    head = "data"
    for i in range(depth):
        head = b.conv_unit(f"conv{i}", head, channels, kernel=3, padding=1)
    head = b.global_pool("pool", head)
    head = b.fc("fc", head, 10)
    b.softmax("prob", head)
    return b.finish()


def tiny_branchy_dnn() -> DNNGraph:
    """A small DAG with a residual branch, for partitioner DAG handling."""
    b = _Builder("tiny_branchy_dnn", TensorShape(3, 16, 16))
    head = b.conv_unit("stem", "data", 8, kernel=3, padding=1)
    left = b.conv_unit("left", head, 8, kernel=3, padding=1)
    right = b.conv_unit("right", head, 8, kernel=1)
    head = b.add_op("join", [left, right])
    head = b.global_pool("pool", head)
    head = b.fc("fc", head, 10)
    b.softmax("prob", head)
    return b.finish()


MODEL_BUILDERS: dict[str, Callable[[], DNNGraph]] = {
    "mobilenet": mobilenet_v1,
    "inception": inception_21k,
    "resnet": resnet50,
}


def build_model(name: str) -> DNNGraph:
    """Build a zoo model by short name (paper trio + extended zoo)."""
    from repro.dnn.zoo_extra import EXTRA_MODEL_BUILDERS

    builders = {**MODEL_BUILDERS, **EXTRA_MODEL_BUILDERS}
    try:
        return builders[name.lower()]()
    except KeyError:
        known = ", ".join(sorted(builders))
        raise ValueError(f"unknown model {name!r} (known: {known})") from None
