"""Layer and tensor-shape primitives.

A :class:`Layer` is a structural description of one DNN operation: its kind,
its hyperparameters (kernel size, stride, channel counts, ...), and — once
attached to a :class:`~repro.dnn.graph.DNNGraph` — its inferred input/output
tensor shapes, weight byte count, and FLOP count.

Weights are assumed to be float32 (4 bytes per scalar), matching the Caffe
models used in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum

BYTES_PER_SCALAR = 4


class LayerKind(str, Enum):
    """The operation a layer performs.

    The set covers every layer type appearing in the paper's three
    evaluation models (MobileNet v1, Inception-21k, ResNet-50) as exported
    by Caffe, where batch-norm and its affine "scale" are separate layers.
    """

    INPUT = "input"
    CONV = "conv"
    FC = "fc"
    POOL_MAX = "pool_max"
    POOL_AVG = "pool_avg"
    GLOBAL_POOL_AVG = "global_pool_avg"
    RELU = "relu"
    BATCH_NORM = "batch_norm"
    SCALE = "scale"
    ADD = "add"
    CONCAT = "concat"
    SOFTMAX = "softmax"
    DROPOUT = "dropout"
    FLATTEN = "flatten"
    LRN = "lrn"  # local response normalization (AlexNet/GoogLeNet era)

    @property
    def has_weights(self) -> bool:
        return self in _WEIGHTED_KINDS

    @property
    def is_compute_intensive(self) -> bool:
        """Kinds whose cost is dominated by arithmetic rather than memory."""
        return self in (LayerKind.CONV, LayerKind.FC)


_WEIGHTED_KINDS = frozenset(
    {LayerKind.CONV, LayerKind.FC, LayerKind.BATCH_NORM, LayerKind.SCALE}
)


@dataclass(frozen=True, order=True)
class TensorShape:
    """Shape of a (batch-1) activation tensor in CHW layout.

    Fully-connected activations are represented with ``height == width == 1``.
    """

    channels: int
    height: int = 1
    width: int = 1

    def __post_init__(self) -> None:
        if self.channels <= 0 or self.height <= 0 or self.width <= 0:
            raise ValueError(f"non-positive tensor dimension: {self}")

    @property
    def elements(self) -> int:
        return self.channels * self.height * self.width

    @property
    def nbytes(self) -> int:
        return self.elements * BYTES_PER_SCALAR

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"{self.channels}x{self.height}x{self.width}"


def _conv_output_hw(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"conv/pool output collapsed to {out} "
            f"(size={size} kernel={kernel} stride={stride} padding={padding})"
        )
    return out


def _pool_output_hw(size: int, kernel: int, stride: int, padding: int) -> int:
    # Caffe pooling uses ceil-mode output sizing.
    out = math.ceil((size + 2 * padding - kernel) / stride) + 1
    if padding > 0 and (out - 1) * stride >= size + padding:
        out -= 1
    if out <= 0:
        raise ValueError(f"pool output collapsed to {out}")
    return out


@dataclass
class Layer:
    """One DNN layer: kind + hyperparameters.

    Only the fields relevant to ``kind`` are meaningful; :meth:`validate`
    checks them.  Shapes, weights, and FLOPs are computed relative to the
    input shapes supplied by the owning graph.
    """

    name: str
    kind: LayerKind
    # Convolution / pooling hyperparameters.
    out_channels: int = 0
    kernel: int = 0
    stride: int = 1
    padding: int = 0
    groups: int = 1
    # Fully-connected hyperparameters.
    out_features: int = 0
    # Input layers carry their own shape.
    input_shape: TensorShape | None = None
    # Free-form tags (e.g. the inception branch a layer belongs to).
    tags: dict = field(default_factory=dict)

    def validate(self) -> None:
        """Raise ``ValueError`` when hyperparameters are inconsistent."""
        if not self.name:
            raise ValueError("layer must have a non-empty name")
        kind = self.kind
        if kind is LayerKind.INPUT:
            if self.input_shape is None:
                raise ValueError(f"{self.name}: input layer requires input_shape")
        elif kind is LayerKind.CONV:
            if self.out_channels <= 0 or self.kernel <= 0 or self.stride <= 0:
                raise ValueError(f"{self.name}: invalid conv hyperparameters")
            if self.groups <= 0:
                raise ValueError(f"{self.name}: invalid conv group count")
        elif kind is LayerKind.FC:
            if self.out_features <= 0:
                raise ValueError(f"{self.name}: fc requires out_features > 0")
        elif kind in (LayerKind.POOL_MAX, LayerKind.POOL_AVG):
            if self.kernel <= 0 or self.stride <= 0:
                raise ValueError(f"{self.name}: invalid pool hyperparameters")

    # ------------------------------------------------------------------
    # Shape inference
    # ------------------------------------------------------------------
    def output_shape(self, input_shapes: list[TensorShape]) -> TensorShape:
        """Infer this layer's output shape from its inputs' shapes."""
        kind = self.kind
        if kind is LayerKind.INPUT:
            assert self.input_shape is not None
            return self.input_shape
        if not input_shapes:
            raise ValueError(f"{self.name}: non-input layer has no inputs")
        first = input_shapes[0]
        if kind is LayerKind.CONV:
            if first.channels % self.groups != 0:
                raise ValueError(
                    f"{self.name}: input channels {first.channels} not divisible "
                    f"by groups {self.groups}"
                )
            out_h = _conv_output_hw(first.height, self.kernel, self.stride, self.padding)
            out_w = _conv_output_hw(first.width, self.kernel, self.stride, self.padding)
            return TensorShape(self.out_channels, out_h, out_w)
        if kind is LayerKind.FC:
            return TensorShape(self.out_features)
        if kind in (LayerKind.POOL_MAX, LayerKind.POOL_AVG):
            out_h = _pool_output_hw(first.height, self.kernel, self.stride, self.padding)
            out_w = _pool_output_hw(first.width, self.kernel, self.stride, self.padding)
            return TensorShape(first.channels, out_h, out_w)
        if kind is LayerKind.GLOBAL_POOL_AVG:
            return TensorShape(first.channels)
        if kind is LayerKind.ADD:
            if any(shape != first for shape in input_shapes[1:]):
                raise ValueError(f"{self.name}: add requires identical input shapes")
            return first
        if kind is LayerKind.CONCAT:
            if any(
                (shape.height, shape.width) != (first.height, first.width)
                for shape in input_shapes[1:]
            ):
                raise ValueError(f"{self.name}: concat requires matching spatial dims")
            channels = sum(shape.channels for shape in input_shapes)
            return TensorShape(channels, first.height, first.width)
        if kind is LayerKind.FLATTEN:
            return TensorShape(first.elements)
        # Elementwise kinds preserve shape: relu, bn, scale, softmax, dropout.
        return first

    # ------------------------------------------------------------------
    # Weight / FLOP accounting
    # ------------------------------------------------------------------
    def weight_count(self, input_shapes: list[TensorShape]) -> int:
        """Number of learned scalars (weights + biases) this layer holds."""
        kind = self.kind
        if kind is LayerKind.CONV:
            in_channels = input_shapes[0].channels
            per_filter = self.kernel * self.kernel * (in_channels // self.groups)
            return per_filter * self.out_channels + self.out_channels
        if kind is LayerKind.FC:
            in_features = input_shapes[0].elements
            return in_features * self.out_features + self.out_features
        if kind is LayerKind.BATCH_NORM:
            # Caffe BatchNorm stores running mean + variance (2 per channel).
            return 2 * input_shapes[0].channels
        if kind is LayerKind.SCALE:
            # Affine gamma + beta.
            return 2 * input_shapes[0].channels
        return 0

    def weight_bytes(self, input_shapes: list[TensorShape]) -> int:
        return self.weight_count(input_shapes) * BYTES_PER_SCALAR

    def flops(self, input_shapes: list[TensorShape]) -> int:
        """Multiply-accumulate-style FLOP count (2 FLOPs per MAC)."""
        kind = self.kind
        out = self.output_shape(input_shapes)
        if kind is LayerKind.CONV:
            in_channels = input_shapes[0].channels
            macs_per_out = self.kernel * self.kernel * (in_channels // self.groups)
            return 2 * macs_per_out * out.elements
        if kind is LayerKind.FC:
            return 2 * input_shapes[0].elements * self.out_features
        if kind in (LayerKind.POOL_MAX, LayerKind.POOL_AVG):
            return self.kernel * self.kernel * out.elements
        if kind is LayerKind.GLOBAL_POOL_AVG:
            return input_shapes[0].elements
        if kind is LayerKind.ADD:
            return out.elements * (len(input_shapes) - 1)
        if kind in (LayerKind.BATCH_NORM, LayerKind.SCALE):
            return 2 * out.elements
        if kind is LayerKind.RELU:
            return out.elements
        if kind is LayerKind.SOFTMAX:
            return 5 * out.elements
        if kind is LayerKind.LRN:
            # Square, windowed sum over channels, power, divide.
            return 8 * out.elements
        # concat / flatten / dropout(inference) / input are data movement only.
        return 0
