"""Numpy forward-inference engine for the DNN substrate.

Executes a frozen :class:`~repro.dnn.graph.DNNGraph` with real tensors, so
that collaborative (partitioned) execution can be verified end to end: the
client executes its layers, ships the boundary tensors, the server
executes its layers, and the final output must be bit-identical to a fully
local run (see :mod:`repro.core.collaboration`).

All activations are batch-1 float32 CHW arrays.  Convolution uses im2col +
matmul; pooling matches the Caffe ceil-mode geometry used by the shape
inference in :mod:`repro.dnn.layer`.
"""

from __future__ import annotations

import numpy as np

from repro.dnn.graph import DNNGraph
from repro.dnn.layer import Layer, LayerKind
from repro.dnn.weights import WeightStore

_BN_EPSILON = 1e-5


def _im2col(x: np.ndarray, kernel: int, stride: int, padding: int) -> np.ndarray:
    """(C, H, W) -> (C*k*k, out_h*out_w) patch matrix."""
    channels, height, width = x.shape
    padded = np.pad(x, ((0, 0), (padding, padding), (padding, padding)))
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    columns = np.empty(
        (channels, kernel, kernel, out_h, out_w), dtype=x.dtype
    )
    for ki in range(kernel):
        for kj in range(kernel):
            columns[:, ki, kj] = padded[
                :,
                ki : ki + stride * out_h : stride,
                kj : kj + stride * out_w : stride,
            ]
    return columns.reshape(channels * kernel * kernel, out_h * out_w)


def _conv(x: np.ndarray, layer: Layer, weights) -> np.ndarray:
    filters, bias = weights
    out_channels = layer.out_channels
    groups = layer.groups
    in_channels = x.shape[0]
    group_in = in_channels // groups
    group_out = out_channels // groups
    out_h = (x.shape[1] + 2 * layer.padding - layer.kernel) // layer.stride + 1
    out_w = (x.shape[2] + 2 * layer.padding - layer.kernel) // layer.stride + 1
    output = np.empty((out_channels, out_h, out_w), dtype=np.float32)
    for g in range(groups):
        x_group = x[g * group_in : (g + 1) * group_in]
        columns = _im2col(x_group, layer.kernel, layer.stride, layer.padding)
        w_group = filters[g * group_out : (g + 1) * group_out].reshape(
            group_out, -1
        )
        result = w_group @ columns + bias[
            g * group_out : (g + 1) * group_out, None
        ]
        output[g * group_out : (g + 1) * group_out] = result.reshape(
            group_out, out_h, out_w
        )
    return output


def _pool_windows(height: int, width: int, kernel: int, stride: int, padding: int):
    """Yield (oh, ow, h0, h1, w0, w1) valid-window bounds, Caffe ceil mode."""
    import math

    def out_size(size: int) -> int:
        out = math.ceil((size + 2 * padding - kernel) / stride) + 1
        if padding > 0 and (out - 1) * stride >= size + padding:
            out -= 1
        return out

    out_h, out_w = out_size(height), out_size(width)
    for oh in range(out_h):
        h0 = max(0, oh * stride - padding)
        h1 = min(height, oh * stride - padding + kernel)
        for ow in range(out_w):
            w0 = max(0, ow * stride - padding)
            w1 = min(width, ow * stride - padding + kernel)
            yield oh, ow, h0, h1, w0, w1


def _pool(x: np.ndarray, layer: Layer, take_max: bool) -> np.ndarray:
    channels, height, width = x.shape
    windows = list(
        _pool_windows(height, width, layer.kernel, layer.stride, layer.padding)
    )
    out_h = max(w[0] for w in windows) + 1
    out_w = max(w[1] for w in windows) + 1
    output = np.empty((channels, out_h, out_w), dtype=np.float32)
    for oh, ow, h0, h1, w0, w1 in windows:
        window = x[:, h0:h1, w0:w1]
        if take_max:
            output[:, oh, ow] = window.max(axis=(1, 2))
        else:
            output[:, oh, ow] = window.mean(axis=(1, 2))
    return output


def _lrn(
    x: np.ndarray, local_size: int = 5, alpha: float = 1e-4, beta: float = 0.75
) -> np.ndarray:
    """Cross-channel local response normalization (Caffe defaults)."""
    channels = x.shape[0]
    squared = x.astype(np.float32) ** 2
    half = local_size // 2
    # Windowed channel sums via a padded cumulative sum.
    cumulative = np.concatenate(
        [np.zeros((1,) + x.shape[1:], dtype=np.float32), np.cumsum(squared, axis=0)]
    )
    upper = np.minimum(np.arange(channels) + half + 1, channels)
    lower = np.maximum(np.arange(channels) - half, 0)
    window_sums = cumulative[upper] - cumulative[lower]
    denominator = (1.0 + (alpha / local_size) * window_sums) ** beta
    return (x / denominator).astype(np.float32)


class NumpyExecutor:
    """Executes layers of one graph with deterministic synthetic weights."""

    def __init__(self, graph: DNNGraph, store: WeightStore | None = None) -> None:
        if not graph.frozen:
            raise ValueError("graph must be frozen")
        self.graph = graph
        self.store = store or WeightStore(graph)

    # ------------------------------------------------------------------
    def make_input(self, rng: np.random.Generator) -> np.ndarray:
        """A random input tensor of the graph's declared input shape."""
        shape = self.graph.info(self.graph.input_name).output_shape
        return rng.normal(
            0.0, 1.0, size=(shape.channels, shape.height, shape.width)
        ).astype(np.float32)

    def execute_layer(
        self, layer_name: str, inputs: list[np.ndarray]
    ) -> np.ndarray:
        """Run one layer on its input tensors (topological-order inputs)."""
        layer = self.graph.layer(layer_name)
        kind = layer.kind
        if kind is LayerKind.INPUT:
            raise ValueError("input layers are sources, not executable ops")
        x = inputs[0]
        if kind is LayerKind.CONV:
            return _conv(x, layer, self.store.arrays(layer_name))
        if kind is LayerKind.FC:
            matrix, bias = self.store.arrays(layer_name)
            flat = x.reshape(-1)
            return (matrix @ flat + bias).reshape(-1, 1, 1)
        if kind is LayerKind.POOL_MAX:
            return _pool(x, layer, take_max=True)
        if kind is LayerKind.POOL_AVG:
            return _pool(x, layer, take_max=False)
        if kind is LayerKind.GLOBAL_POOL_AVG:
            return x.mean(axis=(1, 2)).reshape(-1, 1, 1).astype(np.float32)
        if kind is LayerKind.RELU:
            return np.maximum(x, 0.0)
        if kind is LayerKind.BATCH_NORM:
            mean, variance = self.store.arrays(layer_name)
            scale = 1.0 / np.sqrt(variance + _BN_EPSILON)
            return ((x - mean[:, None, None]) * scale[:, None, None]).astype(
                np.float32
            )
        if kind is LayerKind.SCALE:
            gamma, beta = self.store.arrays(layer_name)
            return (x * gamma[:, None, None] + beta[:, None, None]).astype(
                np.float32
            )
        if kind is LayerKind.ADD:
            total = inputs[0].copy()
            for other in inputs[1:]:
                total += other
            return total
        if kind is LayerKind.CONCAT:
            return np.concatenate(inputs, axis=0)
        if kind is LayerKind.FLATTEN:
            return x.reshape(-1, 1, 1)
        if kind is LayerKind.SOFTMAX:
            logits = x.reshape(-1)
            logits = logits - logits.max()
            exp = np.exp(logits)
            return (exp / exp.sum()).reshape(x.shape).astype(np.float32)
        if kind is LayerKind.DROPOUT:
            return x  # inference mode: identity
        if kind is LayerKind.LRN:
            return _lrn(x)
        raise NotImplementedError(f"unsupported layer kind: {kind}")

    def run(self, input_tensor: np.ndarray) -> np.ndarray:
        """Full local forward pass; returns the output layer's tensor."""
        tensors = self.run_all(input_tensor)
        return tensors[self.graph.output_name]

    def run_all(self, input_tensor: np.ndarray) -> dict[str, np.ndarray]:
        """Forward pass returning every layer's activation."""
        expected = self.graph.info(self.graph.input_name).output_shape
        if input_tensor.shape != (
            expected.channels, expected.height, expected.width,
        ):
            raise ValueError(
                f"input shape {input_tensor.shape} != declared {expected}"
            )
        tensors: dict[str, np.ndarray] = {
            self.graph.input_name: input_tensor.astype(np.float32)
        }
        for name in self.graph.topo_order[1:]:
            inputs = [tensors[p] for p in self.graph.predecessors(name)]
            output = self.execute_layer(name, inputs)
            info = self.graph.info(name)
            assert output.shape == (
                info.output_shape.channels,
                info.output_shape.height,
                info.output_shape.width,
            ), f"{name}: executor/shape-inference disagreement"
            tensors[name] = output
        return tensors
