"""Deterministic synthetic weights and wire serialization.

PerDNN moves real layer weights around: clients upload them to edge
servers, and servers migrate them to other servers over the backhaul.
This module provides (1) a :class:`WeightStore` that materializes
deterministic, seeded float32 weights for any layer of a frozen graph —
every party that knows the (graph, layer) pair generates bit-identical
tensors — and (2) a simple length-prefixed wire format with a CRC so
uploads and migrations can be exercised with actual bytes.

Weight array layout per layer kind (Caffe conventions):

* conv:  filters (out_c, in_c/groups, k, k) + bias (out_c,)
* fc:    matrix (out_features, in_features) + bias (out_features,)
* batch_norm: running mean (C,) + running variance (C,)
* scale: gamma (C,) + beta (C,)
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.dnn.graph import DNNGraph
from repro.dnn.layer import Layer, LayerKind

_MAGIC = b"PDNN"
_HEADER = struct.Struct("<4sI")  # magic, payload length
_ARRAY_HEADER = struct.Struct("<II")  # ndim, total elements


def _layer_seed(graph_name: str, layer_name: str) -> int:
    """Stable seed for a layer's weights, shared by every party."""
    return zlib.crc32(f"{graph_name}/{layer_name}".encode())


def _he_std(fan_in: int) -> float:
    return float(np.sqrt(2.0 / max(1, fan_in)))


class WeightStore:
    """Lazily materializes (and caches) every layer's weight arrays."""

    def __init__(self, graph: DNNGraph) -> None:
        if not graph.frozen:
            raise ValueError("graph must be frozen")
        self.graph = graph
        self._cache: dict[str, tuple[np.ndarray, ...]] = {}

    def arrays(self, layer_name: str) -> tuple[np.ndarray, ...]:
        """The layer's weight arrays (empty tuple for weightless kinds)."""
        cached = self._cache.get(layer_name)
        if cached is not None:
            return cached
        layer = self.graph.layer(layer_name)
        info = self.graph.info(layer_name)
        rng = np.random.default_rng(_layer_seed(self.graph.name, layer_name))
        arrays = self._materialize(layer, info.input_shapes, rng)
        self._cache[layer_name] = arrays
        return arrays

    @staticmethod
    def _materialize(
        layer: Layer, input_shapes, rng: np.random.Generator
    ) -> tuple[np.ndarray, ...]:
        kind = layer.kind
        if kind is LayerKind.CONV:
            in_channels = input_shapes[0].channels // layer.groups
            fan_in = in_channels * layer.kernel * layer.kernel
            filters = rng.normal(
                0.0,
                _he_std(fan_in),
                size=(layer.out_channels, in_channels, layer.kernel, layer.kernel),
            ).astype(np.float32)
            bias = np.zeros(layer.out_channels, dtype=np.float32)
            return (filters, bias)
        if kind is LayerKind.FC:
            in_features = input_shapes[0].elements
            matrix = rng.normal(
                0.0, _he_std(in_features), size=(layer.out_features, in_features)
            ).astype(np.float32)
            bias = np.zeros(layer.out_features, dtype=np.float32)
            return (matrix, bias)
        if kind is LayerKind.BATCH_NORM:
            channels = input_shapes[0].channels
            mean = rng.normal(0.0, 0.05, size=channels).astype(np.float32)
            variance = rng.uniform(0.8, 1.2, size=channels).astype(np.float32)
            return (mean, variance)
        if kind is LayerKind.SCALE:
            channels = input_shapes[0].channels
            gamma = rng.uniform(0.9, 1.1, size=channels).astype(np.float32)
            beta = rng.normal(0.0, 0.02, size=channels).astype(np.float32)
            return (gamma, beta)
        return ()

    def payload_bytes(self, layer_name: str) -> int:
        """Raw weight bytes of one layer (matches ``LayerInfo.weight_bytes``)."""
        return sum(array.nbytes for array in self.arrays(layer_name))


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
def serialize_arrays(arrays: tuple[np.ndarray, ...]) -> bytes:
    """Pack float32 arrays into a framed, checksummed byte string."""
    body = bytearray()
    body += struct.pack("<I", len(arrays))
    for array in arrays:
        if array.dtype != np.float32:
            raise ValueError("wire format carries float32 arrays only")
        body += _ARRAY_HEADER.pack(array.ndim, array.size)
        body += struct.pack(f"<{array.ndim}I", *array.shape)
        body += array.tobytes()
    payload = bytes(body)
    checksum = zlib.crc32(payload)
    return _HEADER.pack(_MAGIC, len(payload)) + payload + struct.pack("<I", checksum)


def deserialize_arrays(blob: bytes) -> tuple[np.ndarray, ...]:
    """Inverse of :func:`serialize_arrays`; validates framing and CRC."""
    if len(blob) < _HEADER.size + 4:
        raise ValueError("truncated weight blob")
    magic, length = _HEADER.unpack_from(blob, 0)
    if magic != _MAGIC:
        raise ValueError("bad magic in weight blob")
    payload_start = _HEADER.size
    payload_end = payload_start + length
    if len(blob) != payload_end + 4:
        raise ValueError("weight blob length mismatch")
    payload = blob[payload_start:payload_end]
    (expected_crc,) = struct.unpack_from("<I", blob, payload_end)
    if zlib.crc32(payload) != expected_crc:
        raise ValueError("weight blob checksum mismatch")
    offset = 0
    (count,) = struct.unpack_from("<I", payload, offset)
    offset += 4
    arrays = []
    for _ in range(count):
        ndim, size = _ARRAY_HEADER.unpack_from(payload, offset)
        offset += _ARRAY_HEADER.size
        shape = struct.unpack_from(f"<{ndim}I", payload, offset)
        offset += 4 * ndim
        nbytes = size * 4
        data = np.frombuffer(
            payload, dtype=np.float32, count=size, offset=offset
        ).reshape(shape)
        offset += nbytes
        arrays.append(data.copy())
    if offset != len(payload):
        raise ValueError("trailing bytes in weight blob")
    return tuple(arrays)


def serialize_layer(store: WeightStore, layer_name: str) -> bytes:
    """One layer's weights on the wire."""
    return serialize_arrays(store.arrays(layer_name))


def serialize_chunk(store: WeightStore, layer_names: tuple[str, ...]) -> bytes:
    """An upload-schedule chunk: length-prefixed layer blobs in order."""
    parts = bytearray()
    parts += struct.pack("<I", len(layer_names))
    for name in layer_names:
        encoded = name.encode()
        blob = serialize_layer(store, name)
        parts += struct.pack("<I", len(encoded))
        parts += encoded
        parts += struct.pack("<I", len(blob))
        parts += blob
    return bytes(parts)


def deserialize_chunk(blob: bytes) -> dict[str, tuple[np.ndarray, ...]]:
    """Inverse of :func:`serialize_chunk`: layer name -> weight arrays."""
    offset = 0
    (count,) = struct.unpack_from("<I", blob, offset)
    offset += 4
    out: dict[str, tuple[np.ndarray, ...]] = {}
    for _ in range(count):
        (name_length,) = struct.unpack_from("<I", blob, offset)
        offset += 4
        name = blob[offset : offset + name_length].decode()
        offset += name_length
        (blob_length,) = struct.unpack_from("<I", blob, offset)
        offset += 4
        out[name] = deserialize_arrays(blob[offset : offset + blob_length])
        offset += blob_length
    if offset != len(blob):
        raise ValueError("trailing bytes in chunk blob")
    return out
