"""High-level partitioner facade used by the master server.

Bundles the per-model execution profile with the runtime inputs (network
speeds, server GPU slowdown) and produces plans plus upload schedules.
Plans are cached on a quantized slowdown key: the large-scale simulator
re-partitions every client every interval, and within one interval many
clients see near-identical server states.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dnn.graph import DNNGraph
from repro.partitioning.execution_graph import ExecutionCosts
from repro.partitioning.shortest_path import PartitionPlan, optimal_plan
from repro.partitioning.uploading import UploadSchedule, build_upload_schedule
from repro.profiling.profiler import ExecutionProfile


@dataclass(frozen=True)
class PartitionResult:
    """A plan plus its upload schedule and the costs they were based on."""

    plan: PartitionPlan
    schedule: UploadSchedule
    costs: ExecutionCosts
    slowdown: float

    @property
    def server_bytes(self) -> float:
        return self.schedule.total_bytes


class DNNPartitioner:
    """Creates (and caches) partitioning plans for one model profile."""

    def __init__(
        self,
        profile: ExecutionProfile,
        uplink_bps: float,
        downlink_bps: float,
        slowdown_quantum: float = 0.25,
        max_chunk_bytes: float | None = 2e6,
    ) -> None:
        if slowdown_quantum <= 0:
            raise ValueError("slowdown_quantum must be positive")
        self.profile = profile
        self.uplink_bps = uplink_bps
        self.downlink_bps = downlink_bps
        self.max_chunk_bytes = max_chunk_bytes
        self._quantum = slowdown_quantum
        self._base_costs = ExecutionCosts.build(
            profile.graph,
            profile.client_times,
            profile.server_times,
            uplink_bps,
            downlink_bps,
        )
        self._cache: dict[float, PartitionResult] = {}
        #: Plan-cache effectiveness telemetry: how often :meth:`partition`
        #: was answered from the quantized cache vs. had to re-plan.
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of :meth:`partition` calls served from the plan cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def graph(self) -> DNNGraph:
        return self.profile.graph

    def quantize(self, slowdown: float) -> float:
        """The cache key a slowdown maps to: ``partition(s)`` and
        ``partition(quantize(s))`` return the same cached result."""
        if slowdown < 1.0:
            slowdown = 1.0
        return round(round(slowdown / self._quantum) * self._quantum, 6)

    # Backwards-compatible alias (pre-telemetry private name).
    _quantize = quantize

    def partition(self, server_slowdown: float = 1.0) -> PartitionResult:
        """Plan + upload schedule for a server at the given GPU slowdown."""
        key = self.quantize(server_slowdown)
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        costs = self._base_costs.scaled_server(max(1.0, key))
        plan = optimal_plan(costs)
        schedule = build_upload_schedule(costs, plan, self.max_chunk_bytes)
        result = PartitionResult(
            plan=plan, schedule=schedule, costs=costs, slowdown=key
        )
        self._cache[key] = result
        return result

    def degraded(
        self, server_slowdown: float, inflation: float
    ) -> PartitionResult:
        """Contention-adaptive degraded plan (overload protection).

        Re-partitions as if the server were ``inflation``× more contended
        than observed, which shifts layers client-ward — the graceful
        midpoint between the full offload plan and all-local execution.
        Shares the quantized plan cache with :meth:`partition`.
        """
        if inflation < 1.0:
            raise ValueError("inflation must be >= 1")
        return self.partition(max(1.0, server_slowdown) * inflation)

    def local_latency(self) -> float:
        """Latency of running the whole model on the client."""
        return self._base_costs.local_latency()
