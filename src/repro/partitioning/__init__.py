"""DNN partitioning (paper §3.C).

The partitioner decides, per layer, whether execution happens on the mobile
client or the edge server, minimizing end-to-end query latency given

* per-layer client execution times (from the DNN profile),
* per-layer server execution times (from the GPU-aware estimator),
* tensor transfer times (tensor bytes / runtime network speed).

The optimal plan is found with the IONN graph/shortest-path formulation,
implemented here as a dynamic program over topological *cut positions* that
generalizes cleanly to DAG models (ResNet, Inception): switching sides at a
position pays the transfer of every tensor alive across that position.

Also provided: the NeuroSurgeon single-split baseline, the
efficiency-greedy upload ordering of the paper's §3.C.2 (send the
highest-benefit-per-byte partition first), and fractional-migration chunk
selection (§4.B.5).
"""

from repro.partitioning.execution_graph import ExecutionCosts, Placement
from repro.partitioning.shortest_path import (
    PartitionPlan,
    constrained_latency,
    optimal_plan,
)
from repro.partitioning.neurosurgeon import neurosurgeon_plan
from repro.partitioning.uploading import UploadChunk, UploadSchedule, build_upload_schedule
from repro.partitioning.fractional import select_fraction
from repro.partitioning.mincut import mincut_plan, realized_latency
from repro.partitioning.partitioner import DNNPartitioner

__all__ = [
    "ExecutionCosts",
    "Placement",
    "PartitionPlan",
    "optimal_plan",
    "constrained_latency",
    "neurosurgeon_plan",
    "mincut_plan",
    "realized_latency",
    "UploadChunk",
    "UploadSchedule",
    "build_upload_schedule",
    "select_fraction",
    "DNNPartitioner",
]
