"""NeuroSurgeon-style single-split partitioning baseline.

NeuroSurgeon (Kang et al., ASPLOS 2017) picks one split point: the client
executes a topological prefix, ships the boundary tensors, and the server
executes the suffix.  It is strictly weaker than the IONN shortest-path
plan (which may cross the network more than once) but serves as the classic
baseline the paper builds upon.
"""

from __future__ import annotations

import numpy as np

from repro.partitioning.execution_graph import ExecutionCosts, Placement
from repro.partitioning.shortest_path import PartitionPlan


def neurosurgeon_plan(costs: ExecutionCosts) -> PartitionPlan:
    """Best single-split plan (split k: layers < k client, >= k server)."""
    n = costs.num_layers
    client_prefix = np.concatenate([[0.0], np.cumsum(costs.client_times)])
    server_total = float(costs.server_times.sum())
    server_suffix = server_total - np.concatenate(
        [[0.0], np.cumsum(costs.server_times)]
    )
    up = costs.cut_bytes * 8.0 / costs.uplink_bps
    down_final = costs.cut_bytes[n] * 8.0 / costs.downlink_bps
    # Latency at split k (k = n means fully local, no transfers at all).
    splits = np.arange(n + 1)
    transfers = np.where(splits < n, up + down_final, 0.0)
    latencies = client_prefix + server_suffix + transfers
    split = int(np.argmin(latencies))
    placements = tuple(
        Placement.CLIENT if i < split else Placement.SERVER for i in range(n)
    )
    return PartitionPlan(
        placements=placements,
        latency=float(latencies[split]),
        layer_names=costs.layer_names,
    )
