"""IONN graph-based partitioning as a shortest-path dynamic program.

The paper (Fig 5, after IONN) turns the DNN into a directed graph with a
client-side and a server-side node per layer; edge weights are execution and
transfer times, and the minimum-latency plan is the shortest input->output
path.  Over topological cut positions that graph is exactly this DP:

    state (i, side): the first i layers are done, live tensors reside on
                     `side`.
    (i, side) -> (i+1, side): execute layer i+1 on `side`
    (i, client) <-> (i, server): move the live tensors across the network

Execution must start and end on the client (the query's input is produced
there and its result is consumed there).  Restricting which layers may run
server-side (``allowed``) yields the latency of a *partially uploaded*
model — the quantity IONN's incremental offloading improves query by query.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.partitioning.execution_graph import ExecutionCosts, Placement

_INFINITY = float("inf")


@dataclass(frozen=True)
class PartitionPlan:
    """The output of partitioning one model for one (client, server) pair."""

    placements: tuple[Placement, ...]  # per topological position
    latency: float  # end-to-end query latency under the plan
    layer_names: tuple[str, ...]

    @property
    def server_indices(self) -> tuple[int, ...]:
        return tuple(
            i for i, p in enumerate(self.placements) if p is Placement.SERVER
        )

    @property
    def server_layers(self) -> tuple[str, ...]:
        return tuple(self.layer_names[i] for i in self.server_indices)

    @property
    def offloads_anything(self) -> bool:
        return any(p is Placement.SERVER for p in self.placements)

    def server_weight_bytes(self, costs: ExecutionCosts) -> float:
        indices = list(self.server_indices)
        return float(costs.weight_bytes[indices].sum()) if indices else 0.0


def _solve(
    costs: ExecutionCosts, allowed: np.ndarray
) -> tuple[float, np.ndarray]:
    """Run the DP; returns (latency, placements array of 0=client/1=server)."""
    n = costs.num_layers
    up = costs.cut_bytes * 8.0 / costs.uplink_bps
    down = costs.cut_bytes * 8.0 / costs.downlink_bps
    # dp[side] = best cost to reach (i, side); parent tracking for recovery.
    dp_client = 0.0
    dp_server = up[0]
    # choice[i, side]: how layer i was executed / reached.
    #   0 = executed on client (came from client state)
    #   1 = executed on server (came from server state)
    exec_side = np.zeros((n, 2), dtype=np.int8)
    # switch[i, side]: whether we crossed the network at boundary i to be on
    # `side` before executing layer i (needed for path recovery).
    switched = np.zeros((n + 1, 2), dtype=bool)
    switched[0, 1] = True  # being on the server at boundary 0 means we uploaded
    for i in range(n):
        run_client = dp_client + costs.client_times[i]
        run_server = (
            dp_server + costs.server_times[i] if allowed[i] else _INFINITY
        )
        # Execute layer i on each side from the matching state.
        new_client = run_client
        new_server = run_server
        exec_side[i, 0] = 0
        exec_side[i, 1] = 1
        # Relax the boundary-(i+1) network crossings.
        cross_to_server = new_client + up[i + 1]
        cross_to_client = new_server + down[i + 1]
        if cross_to_server < new_server:
            new_server = cross_to_server
            switched[i + 1, 1] = True
            exec_side[i, 1] = 0  # server state at i+1 actually ran i on client
        if cross_to_client < new_client:
            new_client = cross_to_client
            switched[i + 1, 0] = True
            exec_side[i, 0] = 1
        dp_client, dp_server = new_client, new_server
    # Result must end at the client; crossing at boundary n was already
    # relaxed above for i = n-1.
    placements = np.zeros(n, dtype=np.int8)
    side = 0  # end on client
    for i in range(n - 1, -1, -1):
        ran_on = exec_side[i, side]
        placements[i] = ran_on
        side = ran_on
    return float(dp_client), placements


def _plan_from(
    costs: ExecutionCosts, latency: float, placements: np.ndarray
) -> PartitionPlan:
    mapping = (Placement.CLIENT, Placement.SERVER)
    return PartitionPlan(
        placements=tuple(mapping[int(p)] for p in placements),
        latency=latency,
        layer_names=costs.layer_names,
    )


def optimal_plan(costs: ExecutionCosts) -> PartitionPlan:
    """Minimum-latency plan with every layer eligible for the server."""
    allowed = np.ones(costs.num_layers, dtype=bool)
    latency, placements = _solve(costs, allowed)
    return _plan_from(costs, latency, placements)


def constrained_latency(
    costs: ExecutionCosts, allowed_server_layers: set[str] | frozenset[str]
) -> float:
    """Best latency when only ``allowed_server_layers`` are on the server.

    This is the query latency at an intermediate point of IONN's incremental
    upload: layers not yet uploaded must run on the client.
    """
    allowed = np.array(
        [name in allowed_server_layers for name in costs.layer_names]
    )
    latency, _ = _solve(costs, allowed)
    return latency


def constrained_plan(
    costs: ExecutionCosts, allowed_server_layers: set[str] | frozenset[str]
) -> PartitionPlan:
    """Like :func:`constrained_latency` but returns the full plan."""
    allowed = np.array(
        [name in allowed_server_layers for name in costs.layer_names]
    )
    latency, placements = _solve(costs, allowed)
    return _plan_from(costs, latency, placements)
