"""Fractional migration: ship only the best fraction of a model (§4.B.5).

Crowded edge servers would need hundreds of Mbps of backhaul to proactively
migrate whole models.  The paper's observation (§4.A) is that the
highest-efficiency-first upload order means a small byte prefix of the
schedule already buys most of the latency reduction, so crowded servers can
migrate only that prefix with ~1-2% performance loss.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.partitioning.uploading import UploadChunk, UploadSchedule


@dataclass(frozen=True)
class FractionSelection:
    """The migrated prefix of an upload schedule under a byte budget."""

    chunks: tuple[UploadChunk, ...]
    nbytes: float
    latency: float  # query latency with only these chunks on the server
    full_latency: float  # latency with the full schedule migrated
    fraction_of_bytes: float  # migrated bytes / full schedule bytes

    @property
    def latency_penalty(self) -> float:
        """Relative latency increase versus full migration."""
        if self.full_latency == 0:
            return 0.0
        return self.latency / self.full_latency - 1.0


def select_fraction(
    schedule: UploadSchedule, byte_budget: float
) -> FractionSelection:
    """Highest-efficiency prefix of ``schedule`` fitting ``byte_budget``."""
    if byte_budget < 0:
        raise ValueError("byte_budget must be non-negative")
    chunks = schedule.chunks_within_bytes(byte_budget)
    nbytes = sum(chunk.nbytes for chunk in chunks)
    latency = schedule.latencies[len(chunks)]
    total = schedule.total_bytes
    return FractionSelection(
        chunks=chunks,
        nbytes=nbytes,
        latency=latency,
        full_latency=schedule.latencies[-1],
        fraction_of_bytes=(nbytes / total) if total > 0 else 0.0,
    )
