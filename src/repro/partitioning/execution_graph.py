"""Execution-cost view of a DNN for partitioning.

:class:`ExecutionCosts` flattens a frozen :class:`~repro.dnn.graph.DNNGraph`
plus its client/server latency tables and the runtime network speeds into
arrays indexed by topological position:

* ``client_times[i]`` / ``server_times[i]`` — execution time of layer ``i``,
* ``weight_bytes[i]`` — bytes that must be uploaded before layer ``i`` can
  run on the server,
* ``cut_bytes[i]`` — bytes of every tensor alive across the boundary after
  the first ``i`` layers (the transfer paid when the execution side switches
  there).  For a linear chain this is exactly the output of layer ``i``;
  for a DAG it also counts skip connections, which is what makes the
  shortest-path partitioner correct on ResNet/Inception graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.dnn.graph import DNNGraph


class Placement(str, Enum):
    """Which party executes a layer under a partitioning plan."""

    CLIENT = "client"
    SERVER = "server"


@dataclass(frozen=True)
class ExecutionCosts:
    """Arrays the partitioning algorithms operate on."""

    graph: DNNGraph
    layer_names: tuple[str, ...]
    client_times: np.ndarray  # seconds, per topological position
    server_times: np.ndarray  # seconds, per topological position
    weight_bytes: np.ndarray  # bytes, per topological position
    cut_bytes: np.ndarray  # bytes, positions 0..n (length n+1)
    uplink_bps: float  # client -> server bits per second
    downlink_bps: float  # server -> client bits per second

    @classmethod
    def build(
        cls,
        graph: DNNGraph,
        client_times: dict[str, float],
        server_times: dict[str, float],
        uplink_bps: float,
        downlink_bps: float,
    ) -> "ExecutionCosts":
        if uplink_bps <= 0 or downlink_bps <= 0:
            raise ValueError("network speeds must be positive")
        order = graph.topo_order
        n = len(order)
        client = np.array([client_times[name] for name in order])
        server = np.array([server_times[name] for name in order])
        weights = np.array(
            [float(graph.info(name).weight_bytes) for name in order]
        )
        position = {name: i for i, name in enumerate(order)}
        cut = np.zeros(n + 1)
        # A tensor produced by layer p is alive across boundary i when p <= i
        # and some consumer q has q > i; count each producer's bytes once per
        # boundary it spans.
        for name in order:
            consumers = graph.successors(name)
            if not consumers:
                continue
            produced_at = position[name]
            last_consumed = max(position[c] for c in consumers)
            out_bytes = float(graph.info(name).output_bytes)
            cut[produced_at + 1 : last_consumed + 1] += out_bytes
        # Boundary 0 carries the raw input tensor (the query payload).
        cut[0] = float(graph.info(order[0]).output_bytes)
        # Boundary n carries the final result back to the client.
        cut[n] = float(graph.info(order[-1]).output_bytes)
        return cls(
            graph=graph,
            layer_names=tuple(order),
            client_times=client,
            server_times=server,
            weight_bytes=weights,
            cut_bytes=cut,
            uplink_bps=uplink_bps,
            downlink_bps=downlink_bps,
        )

    @property
    def num_layers(self) -> int:
        return len(self.layer_names)

    def upload_seconds(self, nbytes: float) -> float:
        return nbytes * 8.0 / self.uplink_bps

    def download_seconds(self, nbytes: float) -> float:
        return nbytes * 8.0 / self.downlink_bps

    def local_latency(self) -> float:
        """Latency of executing everything on the client."""
        return float(self.client_times.sum())

    def with_server_times(self, server_times: np.ndarray) -> "ExecutionCosts":
        """Copy with different server-side times (e.g. contention-scaled)."""
        server_times = np.asarray(server_times, dtype=float)
        if server_times.shape != self.server_times.shape:
            raise ValueError("server_times shape mismatch")
        return ExecutionCosts(
            graph=self.graph,
            layer_names=self.layer_names,
            client_times=self.client_times,
            server_times=server_times,
            weight_bytes=self.weight_bytes,
            cut_bytes=self.cut_bytes,
            uplink_bps=self.uplink_bps,
            downlink_bps=self.downlink_bps,
        )

    def scaled_server(self, slowdown: float) -> "ExecutionCosts":
        """Copy with server times scaled by a contention slowdown factor."""
        if slowdown < 1.0:
            raise ValueError("slowdown must be >= 1")
        return self.with_server_times(self.server_times * slowdown)
