"""Min-cut DAG partitioning (after Hu et al., INFOCOM 2019).

The paper's Related Work cites "a partitioning algorithm applicable to
DAG-formed DNNs based on the min-cut algorithm" as the generalization of
IONN's shortest-path search.  This module implements that alternative so
the two can be compared (see ``benchmarks/bench_ablation_partitioners.py``).

Formulation
-----------
Binary labelling: each layer runs on the client or the server.  Build a
flow network with a source ``s`` (client) and sink ``t`` (server):

* edge ``s -> L`` with capacity = the *server* execution time of ``L``
  (paid iff ``L`` ends up on the server side of the cut),
* edge ``L -> t`` with capacity = the *client* execution time,
* for every tensor produced by ``P`` and consumed by ``C``, edges
  ``P <-> C`` with capacity = its transfer time (upload one way, download
  the other), paid iff the tensor crosses the cut.

The minimum s-t cut then minimizes total execution + transfer time.  The
query input (produced at the client) and the final result (consumed at the
client) are modelled by charging server-labelled entry/exit layers their
boundary transfers.

Note the objective is the *sum* of costs, which equals end-to-end latency
for sequential execution but — unlike the shortest-path DP — assumes every
crossing tensor is transferred exactly once and allows arbitrarily
interleaved placements.  The DP is exact for PerDNN's prefix-style
execution; min-cut may pick placements whose realized prefix-style latency
is worse, which is precisely the comparison the ablation benchmark makes.
"""

from __future__ import annotations

import networkx as nx

from repro.partitioning.execution_graph import ExecutionCosts, Placement
from repro.partitioning.shortest_path import PartitionPlan

_SOURCE = "__client__"
_SINK = "__server__"


def _transfer_seconds(nbytes: float, bps: float) -> float:
    return nbytes * 8.0 / bps


def build_flow_network(costs: ExecutionCosts) -> nx.DiGraph:
    """The s-t flow network whose min cut is the min-cost labelling."""
    graph = costs.graph
    flow = nx.DiGraph()
    names = costs.layer_names
    index = {name: i for i, name in enumerate(names)}
    for i, name in enumerate(names):
        # Label cost edges: cut s->L puts L on the server (pay server time);
        # cut L->t puts L on the client (pay client time).
        flow.add_edge(_SOURCE, name, capacity=float(costs.server_times[i]))
        flow.add_edge(name, _SINK, capacity=float(costs.client_times[i]))
    for name in names:
        out_bytes = float(graph.info(name).output_bytes)
        up = _transfer_seconds(out_bytes, costs.uplink_bps)
        down = _transfer_seconds(out_bytes, costs.downlink_bps)
        for successor in graph.successors(name):
            # Producer on client, consumer on server -> upload; the reverse
            # -> download.  Two directed edges with the matching costs.
            _add_capacity(flow, name, successor, up)
            _add_capacity(flow, successor, name, down)
    # Query input is produced at the client: a server-labelled first layer
    # pays the input upload.  Final result is consumed at the client: a
    # server-labelled last layer pays the result download.
    first, last = names[0], names[-1]
    input_up = _transfer_seconds(float(costs.cut_bytes[0]), costs.uplink_bps)
    result_down = _transfer_seconds(
        float(costs.cut_bytes[len(names)]), costs.downlink_bps
    )
    _add_capacity(flow, _SOURCE, first, input_up)
    _add_capacity(flow, _SOURCE, last, result_down)
    return flow


def _add_capacity(flow: nx.DiGraph, u: str, v: str, capacity: float) -> None:
    if flow.has_edge(u, v):
        flow[u][v]["capacity"] += capacity
    else:
        flow.add_edge(u, v, capacity=capacity)


def mincut_plan(costs: ExecutionCosts) -> PartitionPlan:
    """Partition by minimum s-t cut; returns a plan with the *cut value*
    as its latency estimate (exact for single-crossing placements)."""
    flow = build_flow_network(costs)
    cut_value, (client_side, server_side) = nx.minimum_cut(
        flow, _SOURCE, _SINK
    )
    placements = tuple(
        Placement.CLIENT if name in client_side else Placement.SERVER
        for name in costs.layer_names
    )
    return PartitionPlan(
        placements=placements,
        latency=float(cut_value),
        layer_names=costs.layer_names,
    )


def realized_latency(costs: ExecutionCosts, plan: PartitionPlan) -> float:
    """Latency of executing ``plan``'s placements in PerDNN's prefix-walk
    model (topological order, transfers at every side switch).

    This evaluates a min-cut labelling under the same execution semantics
    the shortest-path DP optimizes, making the two directly comparable.
    """
    up = costs.cut_bytes * 8.0 / costs.uplink_bps
    down = costs.cut_bytes * 8.0 / costs.downlink_bps
    total = 0.0
    side = Placement.CLIENT
    for i, placement in enumerate(plan.placements):
        if placement is not side:
            total += up[i] if placement is Placement.SERVER else down[i]
            side = placement
        total += (
            costs.server_times[i]
            if placement is Placement.SERVER
            else costs.client_times[i]
        )
    if side is Placement.SERVER:
        total += down[costs.num_layers]
    return float(total)
