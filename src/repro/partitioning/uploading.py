"""Efficiency-greedy upload ordering (paper §3.C.2, after Shin et al.).

Given a partitioning plan, the server-side layers must be shipped to the
edge server (by the client over the wireless uplink, or between servers
over the backhaul for proactive migration).  The paper sends
highest-benefit-per-byte first:

    "We create the partitions of the server-side layers, which are all
     possible successive layers in the server-side layers, and calculate
     the efficiency of each partition.  Then, we decide to upload a
     partition with the highest efficiency first and update the efficiency
     of the remaining partitions."

Here *efficiency* of a contiguous run of layers is the query-latency
reduction it enables divided by its weight bytes.  Each greedy round
evaluates every contiguous candidate run still missing, with boundary
transfer costs that account for runs already scheduled (an adjacent
already-scheduled run absorbs a network crossing).  This makes
compute-dense, low-weight convolution runs — Inception's front stem — go
first, the structural effect behind Fig 7 and fractional migration.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.partitioning.execution_graph import ExecutionCosts
from repro.partitioning.shortest_path import PartitionPlan, constrained_latency

_MIN_BYTES = 1.0  # avoid division by zero for weightless runs


@dataclass(frozen=True)
class UploadChunk:
    """One contiguous run of layers scheduled for a single transfer."""

    indices: tuple[int, ...]  # topological positions
    layer_names: tuple[str, ...]
    nbytes: float
    efficiency: float  # seconds saved per byte, at selection time
    benefit: float  # seconds saved, at selection time


@dataclass(frozen=True)
class UploadSchedule:
    """Ordered chunks plus the query latency after each chunk arrives.

    ``latencies[k]`` is the best query latency once chunks ``0..k-1`` are
    available on the server (``latencies[0]`` is the no-upload latency);
    ``latencies[-1]`` equals the plan's final latency.
    """

    chunks: tuple[UploadChunk, ...]
    latencies: tuple[float, ...]

    @cached_property
    def total_bytes(self) -> float:
        # Same left-to-right running sum as :meth:`cumulative_bytes`, cached
        # because the simulator reads it once per client per interval.
        return sum(chunk.nbytes for chunk in self.chunks)

    def cumulative_bytes(self) -> list[float]:
        total = 0.0
        out = []
        for chunk in self.chunks:
            total += chunk.nbytes
            out.append(total)
        return out

    @cached_property
    def _cumulative(self) -> np.ndarray:
        return np.cumsum([chunk.nbytes for chunk in self.chunks])

    @cached_property
    def _cumulative_list(self) -> list[float]:
        return self._cumulative.tolist()

    @cached_property
    def _latency_array(self) -> np.ndarray:
        return np.asarray(self.latencies, dtype=float)

    def latency_after_bytes(self, received_bytes: float) -> float:
        """Query latency once ``received_bytes`` of the schedule arrived."""
        if not self.chunks:
            return self.latencies[0]
        # bisect_right on the same cumulative values np.searchsorted
        # (side="right") would scan — identical index, ~30x less overhead.
        stage = bisect_right(self._cumulative_list, received_bytes + 1e-9)
        return self.latencies[stage]

    def latencies_after_bytes(self, received_bytes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`latency_after_bytes` over many byte counts.

        Each element equals the scalar lookup bit-for-bit: the same
        ``+ 1e-9`` nudge, the same right-bisection over the same cumulative
        array, the same latency table.
        """
        received = np.asarray(received_bytes, dtype=float)
        if not self.chunks:
            return np.full(received.shape, self.latencies[0])
        stages = np.searchsorted(
            self._cumulative, received + 1e-9, side="right"
        )
        return self._latency_array[stages]

    def chunks_within_bytes(self, byte_budget: float) -> tuple[UploadChunk, ...]:
        """Prefix of the schedule fitting in ``byte_budget`` bytes."""
        out = []
        total = 0.0
        for chunk in self.chunks:
            if total + chunk.nbytes > byte_budget + 1e-9:
                break
            total += chunk.nbytes
            out.append(chunk)
        return tuple(out)


def _segment_candidates(
    start: int,
    end: int,
    diff_prefix: np.ndarray,
    weight_prefix: np.ndarray,
    up: np.ndarray,
    down: np.ndarray,
    left_adjacent: bool,
    right_adjacent: bool,
) -> tuple[float, int, int, float, float] | None:
    """Best (efficiency, i, j, benefit, bytes) run inside segment [start, end].

    ``left_adjacent``/``right_adjacent`` say whether the layer just before
    ``start`` / just after ``end`` is already scheduled on the server, which
    changes which network crossings a candidate run absorbs.
    """
    length = end - start + 1
    offsets = np.arange(length)
    i_idx = start + offsets[:, None]  # run start (absolute)
    j_idx = start + offsets[None, :]  # run end (absolute)
    valid = j_idx >= i_idx
    gain = diff_prefix[j_idx + 1] - diff_prefix[i_idx]
    nbytes = weight_prefix[j_idx + 1] - weight_prefix[i_idx]
    # Entry cost at boundary i: absorbed when the run starts at `start` and
    # the left neighbour is scheduled (crossing there disappears: we gain the
    # downlink crossing that used to exist).
    entry = np.where(
        left_adjacent & (i_idx == start), -down[i_idx], up[i_idx]
    )
    # Exit cost at boundary j+1: absorbed when the run ends at `end` and the
    # right neighbour is scheduled (its entry upload disappears).
    exit_ = np.where(
        right_adjacent & (j_idx == end), -up[j_idx + 1], down[j_idx + 1]
    )
    benefit = np.where(valid, gain - entry - exit_, -np.inf)
    efficiency = benefit / np.maximum(nbytes, _MIN_BYTES)
    flat = int(np.argmax(efficiency))
    i_best, j_best = np.unravel_index(flat, efficiency.shape)
    if not np.isfinite(efficiency[i_best, j_best]):
        return None
    return (
        float(efficiency[i_best, j_best]),
        int(i_idx[i_best, 0]),
        int(j_idx[0, j_best]),
        float(benefit[i_best, j_best]),
        float(nbytes[i_best, j_best]),
    )


def _subdivide(
    chunks: list[UploadChunk],
    costs: ExecutionCosts,
    max_chunk_bytes: float,
) -> list[UploadChunk]:
    """Split chunks into contiguous sub-runs of at most ``max_chunk_bytes``.

    Finer granularity smooths the incremental-offloading latency curve (a
    client re-plans after every completed transfer); single layers larger
    than the cap (e.g. a huge fc) become their own chunk.
    """
    out: list[UploadChunk] = []
    for chunk in chunks:
        group: list[int] = []
        group_bytes = 0.0
        for index in chunk.indices:
            layer_bytes = float(costs.weight_bytes[index])
            if group and group_bytes + layer_bytes > max_chunk_bytes:
                out.append(_make_sub_chunk(chunk, group, group_bytes, costs))
                group, group_bytes = [], 0.0
            group.append(index)
            group_bytes += layer_bytes
        if group:
            out.append(_make_sub_chunk(chunk, group, group_bytes, costs))
    return out


def _make_sub_chunk(
    parent: UploadChunk, indices: list[int], nbytes: float, costs: ExecutionCosts
) -> UploadChunk:
    share = nbytes / parent.nbytes if parent.nbytes > 0 else 0.0
    return UploadChunk(
        indices=tuple(indices),
        layer_names=tuple(costs.layer_names[k] for k in indices),
        nbytes=nbytes,
        efficiency=parent.efficiency,
        benefit=parent.benefit * share,
    )


def build_upload_schedule(
    costs: ExecutionCosts, plan: PartitionPlan, max_chunk_bytes: float | None = None
) -> UploadSchedule:
    """Greedy highest-efficiency-first ordering of the plan's server layers."""
    server = sorted(plan.server_indices)
    if not server:
        latency = constrained_latency(costs, frozenset())
        return UploadSchedule(chunks=(), latencies=(latency,))
    server_set = set(server)
    diff = costs.client_times - costs.server_times
    diff_prefix = np.concatenate([[0.0], np.cumsum(diff)])
    weight_prefix = np.concatenate([[0.0], np.cumsum(costs.weight_bytes)])
    up = costs.cut_bytes * 8.0 / costs.uplink_bps
    down = costs.cut_bytes * 8.0 / costs.downlink_bps
    scheduled: set[int] = set()
    chunks: list[UploadChunk] = []
    while len(scheduled) < len(server_set):
        remaining = sorted(server_set - scheduled)
        # Maximal contiguous segments of remaining layers.
        segments: list[tuple[int, int]] = []
        seg_start = remaining[0]
        prev = remaining[0]
        for index in remaining[1:]:
            if index != prev + 1:
                segments.append((seg_start, prev))
                seg_start = index
            prev = index
        segments.append((seg_start, prev))
        best: tuple[float, int, int, float, float] | None = None
        for start, end in segments:
            candidate = _segment_candidates(
                start,
                end,
                diff_prefix,
                weight_prefix,
                up,
                down,
                left_adjacent=(start - 1) in scheduled,
                right_adjacent=(end + 1) in scheduled,
            )
            if candidate is not None and (best is None or candidate[0] > best[0]):
                best = candidate
        assert best is not None, "remaining segments must yield a candidate"
        _, i, j, benefit, nbytes = best
        indices = tuple(range(i, j + 1))
        scheduled.update(indices)
        chunks.append(
            UploadChunk(
                indices=indices,
                layer_names=tuple(costs.layer_names[k] for k in indices),
                nbytes=nbytes,
                efficiency=best[0],
                benefit=benefit,
            )
        )
    if max_chunk_bytes is not None:
        if max_chunk_bytes <= 0:
            raise ValueError("max_chunk_bytes must be positive")
        chunks = _subdivide(chunks, costs, max_chunk_bytes)
    # Exact query latency after each chunk, via the constrained DP.
    latencies = [constrained_latency(costs, frozenset())]
    available: set[str] = set()
    for chunk in chunks:
        available.update(chunk.layer_names)
        latencies.append(constrained_latency(costs, frozenset(available)))
    return UploadSchedule(chunks=tuple(chunks), latencies=tuple(latencies))
