"""Dataset statistics: the numbers the paper quotes about its traces."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.hexgrid import HexGrid
from repro.mobility.trajectory import TrajectoryDataset


@dataclass(frozen=True)
class DatasetStatistics:
    """Summary used to validate synthetic datasets against the paper's."""

    name: str
    num_users: int
    interval_seconds: float
    region_km: tuple[float, float]
    average_speed_mps: float  # includes dwells, like the paper's ~0.5 / ~3.9
    moving_speed_mps: float  # speed while actually moving
    visited_cells: int  # cells (= edge servers) any trajectory touched
    cell_changes_per_step: float  # how often a step crosses a cell boundary


def dataset_statistics(
    dataset: TrajectoryDataset, cell_radius: float = 50.0
) -> DatasetStatistics:
    grid = HexGrid(cell_radius)
    speeds: list[np.ndarray] = []
    visited = set()
    changes = 0
    steps = 0
    for trajectory in dataset.trajectories:
        if len(trajectory) > 1:
            speeds.append(trajectory.speeds())
        cells = [grid.cell_of(tuple(p)) for p in trajectory.points]
        visited.update(cells)
        changes += sum(1 for a, b in zip(cells, cells[1:]) if a != b)
        steps += max(0, len(cells) - 1)
    all_speeds = np.concatenate(speeds) if speeds else np.zeros(1)
    moving = all_speeds[all_speeds > 0.3]
    return DatasetStatistics(
        name=dataset.name,
        num_users=dataset.num_users,
        interval_seconds=dataset.interval_seconds,
        region_km=(dataset.bbox.width / 1000.0, dataset.bbox.height / 1000.0),
        average_speed_mps=float(all_speeds.mean()),
        moving_speed_mps=float(moving.mean()) if moving.size else 0.0,
        visited_cells=len(visited),
        cell_changes_per_step=(changes / steps) if steps else 0.0,
    )
