"""Synthetic trajectory datasets (substitutes for Geolife and KAIST).

The paper replays two GPS datasets that are not redistributable here:

* **KAIST** (CRAWDAD ncsu/mobilitymodels): 31 students on a 1.5 km x 2 km
  campus, sampled every 30 s, average speed ~0.5 m/s (walking with long
  dwells).
* **Geolife** (Microsoft Research): 138 users inside a 7.2 km x 5.6 km
  Beijing rectangle, sampled every 1-5 s, average speed ~3.9 m/s (mixed
  walk / bike / vehicle transportation modes).

:func:`kaist_like` and :func:`geolife_like` generate seeded synthetic
datasets matching those regions, user counts, sampling intervals, speed
mixes, and dwell behaviour.  Mobility prediction and the large-scale
simulation only consume these statistics, so the substitution preserves the
phenomena under study — in particular, fast multi-modal Geolife movement
stays harder to predict than slow campus walking, reproducing the paper's
KAIST-vs-Geolife accuracy and hit-ratio gaps.
"""

from repro.trajectories.synthetic import (
    SyntheticMobilityConfig,
    generate_dataset,
    geolife_like,
    kaist_like,
)
from repro.trajectories.stats import DatasetStatistics, dataset_statistics

__all__ = [
    "SyntheticMobilityConfig",
    "generate_dataset",
    "kaist_like",
    "geolife_like",
    "DatasetStatistics",
    "dataset_statistics",
]
