"""Waypoint-based synthetic mobility generator.

Users move between shared points of interest (POIs — campus buildings,
subway exits, shops).  Each leg picks a destination with probability
decaying in distance, a transportation mode (per-dataset speed mix), walks
a straight line with speed jitter and heading noise, then dwells at the
destination.  Positions are recorded every ``interval_seconds`` with GPS
noise.

The resulting trajectories are piecewise near-linear with pauses — the
regime where the paper found the last two positions dominate predictability
(Fig 6 after Song et al.) and where linear SVR performs on par with an
LSTM (Table III).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.geometry import BoundingBox
from repro.mobility.trajectory import Trajectory, TrajectoryDataset


@dataclass(frozen=True)
class SyntheticMobilityConfig:
    """Knobs of the waypoint mobility model for one dataset."""

    name: str
    bbox: BoundingBox
    num_users: int
    interval_seconds: float
    duration_steps: int  # samples per user
    num_pois: int
    # (speed m/s, probability) per transportation mode.
    mode_speeds: tuple[tuple[float, float], ...]
    mean_dwell_seconds: float
    destination_scale: float  # metres; nearer POIs are preferred
    gps_noise_std: float = 4.0
    heading_noise_std: float = 0.12  # radians per step while travelling
    speed_jitter_sigma: float = 0.18  # lognormal sigma on leg speed

    def __post_init__(self) -> None:
        total = sum(p for _, p in self.mode_speeds)
        if abs(total - 1.0) > 1e-6:
            raise ValueError("mode probabilities must sum to 1")
        if self.num_users < 1 or self.duration_steps < 2 or self.num_pois < 2:
            raise ValueError("invalid synthetic mobility configuration")


def _generate_pois(
    config: SyntheticMobilityConfig, rng: np.random.Generator
) -> np.ndarray:
    """POIs clustered around a few hubs, like buildings along streets."""
    num_hubs = max(2, config.num_pois // 6)
    hubs = np.column_stack(
        [
            rng.uniform(config.bbox.min_x, config.bbox.max_x, num_hubs),
            rng.uniform(config.bbox.min_y, config.bbox.max_y, num_hubs),
        ]
    )
    spread = 0.08 * min(config.bbox.width, config.bbox.height)
    assignments = rng.integers(0, num_hubs, config.num_pois)
    pois = hubs[assignments] + rng.normal(0.0, spread, size=(config.num_pois, 2))
    pois[:, 0] = np.clip(pois[:, 0], config.bbox.min_x, config.bbox.max_x)
    pois[:, 1] = np.clip(pois[:, 1], config.bbox.min_y, config.bbox.max_y)
    return pois


def _pick_destination(
    pois: np.ndarray,
    current: np.ndarray,
    scale: float,
    rng: np.random.Generator,
) -> np.ndarray:
    distances = np.hypot(pois[:, 0] - current[0], pois[:, 1] - current[1])
    weights = np.exp(-distances / scale)
    weights[distances < 1.0] = 0.0  # do not "travel" to the current POI
    total = weights.sum()
    if total <= 0:
        index = int(rng.integers(0, len(pois)))
    else:
        index = int(rng.choice(len(pois), p=weights / total))
    return pois[index]


def _simulate_user(
    user_id: int,
    config: SyntheticMobilityConfig,
    pois: np.ndarray,
    rng: np.random.Generator,
) -> Trajectory:
    dt = config.interval_seconds
    position = pois[rng.integers(0, len(pois))].astype(float).copy()
    samples = np.empty((config.duration_steps, 2))
    mode_speeds = np.array([s for s, _ in config.mode_speeds])
    mode_probs = np.array([p for _, p in config.mode_speeds])
    step = 0
    dwell_remaining = float(rng.exponential(config.mean_dwell_seconds))
    destination: np.ndarray | None = None
    speed = 0.0
    heading = 0.0
    while step < config.duration_steps:
        if dwell_remaining > 0:
            # Dwelling: stationary, consume whole sampling periods.
            samples[step] = position + rng.normal(0, config.gps_noise_std, 2)
            step += 1
            dwell_remaining -= dt
            continue
        if destination is None:
            destination = _pick_destination(
                pois, position, config.destination_scale, rng
            )
            mode = int(rng.choice(len(mode_speeds), p=mode_probs))
            speed = float(
                mode_speeds[mode]
                * rng.lognormal(mean=0.0, sigma=config.speed_jitter_sigma)
            )
            heading = float(
                np.arctan2(
                    destination[1] - position[1], destination[0] - position[0]
                )
            )
        # Travel for one sampling period, re-aiming at the destination with
        # heading noise (streets are not perfectly straight).
        target_heading = float(
            np.arctan2(destination[1] - position[1], destination[0] - position[0])
        )
        heading = target_heading + float(
            rng.normal(0.0, config.heading_noise_std)
        )
        distance_left = float(np.hypot(*(destination - position)))
        travel = min(speed * dt, distance_left)
        position = position + travel * np.array(
            [np.cos(heading), np.sin(heading)]
        )
        position[0] = min(max(position[0], config.bbox.min_x), config.bbox.max_x)
        position[1] = min(max(position[1], config.bbox.min_y), config.bbox.max_y)
        samples[step] = position + rng.normal(0, config.gps_noise_std, 2)
        step += 1
        if distance_left <= speed * dt:
            destination = None
            dwell_remaining = float(rng.exponential(config.mean_dwell_seconds))
    return Trajectory(
        user_id=user_id, interval_seconds=dt, points=samples
    )


def generate_dataset(
    config: SyntheticMobilityConfig, rng: np.random.Generator
) -> TrajectoryDataset:
    """Generate all users of a dataset from one seeded generator."""
    pois = _generate_pois(config, rng)
    trajectories = tuple(
        _simulate_user(user_id, config, pois, rng)
        for user_id in range(config.num_users)
    )
    return TrajectoryDataset(
        name=config.name,
        interval_seconds=config.interval_seconds,
        bbox=config.bbox,
        trajectories=trajectories,
    )


def kaist_like(
    rng: np.random.Generator,
    num_users: int = 31,
    duration_steps: int = 720,
    interval_seconds: float = 30.0,
) -> TrajectoryDataset:
    """Campus mobility: slow walks between buildings, long dwells.

    Matches the paper's KAIST setup: 1.5 km x 2 km region, 30 s sampling,
    ~0.5 m/s average speed including dwells.
    """
    config = SyntheticMobilityConfig(
        name="kaist-like",
        bbox=BoundingBox(0.0, 0.0, 1500.0, 2000.0),
        num_users=num_users,
        interval_seconds=interval_seconds,
        duration_steps=duration_steps,
        num_pois=28,
        mode_speeds=((1.3, 1.0),),  # walking only
        mean_dwell_seconds=600.0,
        destination_scale=500.0,
        gps_noise_std=4.0,
    )
    return generate_dataset(config, rng)


def geolife_like(
    rng: np.random.Generator,
    num_users: int = 138,
    duration_steps: int = 900,
    interval_seconds: float = 5.0,
) -> TrajectoryDataset:
    """Urban multi-modal mobility over the paper's Beijing rectangle.

    7.2 km x 5.6 km region, base sampling 5 s (the paper resamples Geolife's
    1-5 s tracks), walk/bike/vehicle mode mix giving ~3.9 m/s average
    moving speed.  Subsample (e.g. factor 4 -> 20 s) to get the intervals
    the paper's predictor uses.
    """
    config = SyntheticMobilityConfig(
        name="geolife-like",
        bbox=BoundingBox(0.0, 0.0, 7200.0, 5600.0),
        num_users=num_users,
        interval_seconds=interval_seconds,
        duration_steps=duration_steps,
        num_pois=90,
        mode_speeds=((1.4, 0.30), (4.5, 0.25), (13.0, 0.45)),
        mean_dwell_seconds=60.0,
        destination_scale=2500.0,
        gps_noise_std=5.0,
    )
    return generate_dataset(config, rng)
