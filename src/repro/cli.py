"""Command-line interface: run PerDNN experiments without writing code.

Usage (after ``pip install -e .``)::

    python -m repro models
    python -m repro partition --model inception --slowdown 2.0
    python -m repro handoff --model resnet --fraction 0.2
    python -m repro simulate --dataset kaist --model inception \
        --policy perdnn --radius 100 --steps 60 \
        --faults flash-crowd --overload redirect \
        --telemetry run.telemetry.json
    python -m repro faults --list
    python -m repro predictors --dataset geolife
    python -m repro telemetry run.telemetry.json

Every command is a thin wrapper over the library API used by the
benchmarks; see benchmarks/ for the full paper-reproduction harness.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core.config import PerDNNConfig
from repro.core.master import MigrationPolicy
from repro.dnn.models import MODEL_BUILDERS, build_model
from repro.dnn.zoo_extra import EXTRA_MODEL_BUILDERS
from repro.faults import BUILTIN_PROFILES, get_profile
from repro.overload import OverloadConfig, SheddingPolicy
from repro.partitioning.partitioner import DNNPartitioner
from repro.profiling.hardware import odroid_xu4, titan_xp_server
from repro.profiling.profiler import ExecutionProfile

ALL_MODELS = {**MODEL_BUILDERS, **EXTRA_MODEL_BUILDERS}


def positive_int(text: str) -> int:
    """argparse type: a strictly positive integer, rejected with a clear
    one-line error instead of a deep simulation traceback."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer (got {value})"
        )
    return value


def _make_partitioner(model: str, config: PerDNNConfig) -> DNNPartitioner:
    profile = ExecutionProfile.build(
        build_model(model), odroid_xu4(), titan_xp_server()
    )
    return DNNPartitioner(
        profile, config.network.uplink_bps, config.network.downlink_bps
    )


def _make_dataset(name: str, users: int, steps: int, seed: int):
    from repro.trajectories.synthetic import geolife_like, kaist_like

    rng = np.random.default_rng(seed)
    if name == "kaist":
        return kaist_like(rng, num_users=users, duration_steps=steps)
    if name == "geolife":
        return geolife_like(rng, num_users=users, duration_steps=steps).subsample(4)
    raise ValueError(f"unknown dataset {name!r} (kaist | geolife)")


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_models(args: argparse.Namespace) -> int:
    print(f"{'model':<12s} {'layers':>7s} {'size MB':>8s} {'GFLOPs':>7s}")
    for name in sorted(ALL_MODELS):
        graph = build_model(name)
        print(
            f"{name:<12s} {len(graph):>7d} {graph.size_mb:>8.1f} "
            f"{graph.total_flops / 1e9:>7.2f}"
        )
    return 0


def cmd_partition(args: argparse.Namespace) -> int:
    config = PerDNNConfig()
    partitioner = _make_partitioner(args.model, config)
    result = partitioner.partition(args.slowdown)
    plan, schedule = result.plan, result.schedule
    print(f"model: {args.model}, server slowdown: {result.slowdown:.2f}x")
    print(f"local latency:     {partitioner.local_latency() * 1e3:8.1f} ms")
    print(f"plan latency:      {plan.latency * 1e3:8.1f} ms")
    print(f"server layers:     {len(plan.server_indices)}/{len(partitioner.graph)}")
    print(f"upload volume:     {schedule.total_bytes / 1e6:8.1f} MB "
          f"in {len(schedule.chunks)} chunks")
    if args.verbose:
        for i, chunk in enumerate(schedule.chunks):
            print(
                f"  [{i:3d}] {chunk.layer_names[0]} .. {chunk.layer_names[-1]} "
                f"({chunk.nbytes / 1e6:.2f} MB) -> "
                f"{schedule.latencies[i + 1] * 1e3:.1f} ms"
            )
    return 0


def cmd_handoff(args: argparse.Namespace) -> int:
    from repro.simulation.single_client import simulate_handoff

    config = PerDNNConfig()
    partitioner = _make_partitioner(args.model, config)
    total = partitioner.partition(1.0).schedule.total_bytes
    result = simulate_handoff(
        partitioner,
        config,
        num_queries=args.queries,
        switch_after=args.switch_after,
        premigrated_bytes=args.fraction * total,
    )
    print(
        f"model: {args.model}, migrated ahead: {args.fraction:.0%} "
        f"({result.migrated_bytes / 1e6:.1f} MB)"
    )
    for i, latency in enumerate(result.latencies, start=1):
        marker = "  <- server change" if i == args.switch_after + 1 else ""
        print(f"  query {i:3d}: {latency * 1e3:8.1f} ms{marker}")
    print(f"peak after switch: {result.peak_latency_after_switch * 1e3:.1f} ms")
    return 0


def _print_profiles(stream) -> None:
    width = max(len(name) for name in BUILTIN_PROFILES) + 2
    print(f"{'profile':<{width}s} description", file=stream)
    for name in sorted(BUILTIN_PROFILES):
        print(
            f"{name:<{width}s} {BUILTIN_PROFILES[name].description}",
            file=stream,
        )


def _build_supervision(args: argparse.Namespace):
    """Translate the simulate supervision/chaos flags into configs."""
    from repro.faults import WorkerChaos
    from repro.simulation.supervisor import SupervisorConfig

    chaos = None
    if args.chaos_kill or args.chaos_hang or args.chaos_kill_shard:
        chaos = WorkerChaos(
            seed=args.chaos_seed,
            kill_rate=args.chaos_kill,
            hang_rate=args.chaos_hang,
            max_injections_per_shard=args.chaos_max_injections,
            hang_seconds=args.chaos_hang_seconds,
            always_kill=tuple(args.chaos_kill_shard or ()),
        )
    return SupervisorConfig(
        max_attempts=args.shard_attempts,
        timeout_seconds=args.shard_timeout,
        allow_partial=args.allow_partial,
        chaos=chaos,
    )


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.simulation.large_scale import SimulationSettings, run_large_scale
    from repro.simulation.sharding import run_large_scale_sharded
    from repro.simulation.supervisor import ShardError

    config = PerDNNConfig(
        migration_radius_m=args.radius,
        handover_hysteresis_m=args.hysteresis,
    )
    try:
        profile = get_profile(args.faults)
    except ValueError:
        print(
            f"error: unknown fault profile {args.faults!r}; built-in "
            "profiles are:", file=sys.stderr,
        )
        _print_profiles(sys.stderr)
        return 2
    overload = None
    if args.overload != "off":
        overload = OverloadConfig(
            policy=SheddingPolicy(args.overload),
            queue_capacity=args.queue_capacity,
        )
    sharded = (
        args.workers > 1
        or args.shard_size is not None
        or args.checkpoint_dir is not None
        or args.spill_datasets
        or bool(args.remote_worker)
    )
    sharded_only = {
        "--resume": args.resume,
        "--model-cache": args.model_cache is not None,
        "--allow-partial": args.allow_partial,
        "--shard-timeout": args.shard_timeout is not None,
        "--shard-attempts": args.shard_attempts != 3,
        "--chaos-kill": bool(args.chaos_kill),
        "--chaos-hang": bool(args.chaos_hang),
        "--chaos-kill-shard": bool(args.chaos_kill_shard),
    }
    misused = [flag for flag, used in sharded_only.items() if used]
    if misused and not sharded:
        print(
            f"error: {', '.join(misused)} only apply to sharded runs; "
            "add --shard-size, --workers, or --checkpoint-dir",
            file=sys.stderr,
        )
        return 2
    try:
        supervision = _build_supervision(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    partitioner = _make_partitioner(args.model, config)
    dataset = _make_dataset(args.dataset, args.users, args.dataset_steps, args.seed)
    settings = SimulationSettings(
        policy=MigrationPolicy(args.policy),
        migration_radius_m=args.radius,
        max_steps=args.steps,
        seed=args.seed,
        faults=profile,
        overload=overload,
    )
    shard_profile_path = None
    if args.profile_top is not None and sharded:
        if args.remote_worker:
            print(
                "error: --profile cannot follow shards onto remote "
                "workers; drop --remote-worker, or profile locally with "
                "--workers 1 --profile",
                file=sys.stderr,
            )
            return 2
        if args.workers > 1 or supervision.needs_processes:
            # The simulation work happens in worker processes the parent
            # profiler cannot see: designate the lowest-index shard's
            # worker, dump its cProfile stats to a scratch file, and
            # merge them into the parent profile below.
            import os
            import tempfile

            fd, shard_profile_path = tempfile.mkstemp(
                prefix="repro-shard-profile-", suffix=".pstats"
            )
            os.close(fd)
    profiler = None
    if args.profile_top is not None:
        # Parent-process view: setup, supervision, and the streaming
        # merge for sharded runs; the whole simulation otherwise.  The
        # shard-worker dump above adds the worker-side view.
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    if sharded:
        try:
            result = run_large_scale_sharded(
                dataset,
                partitioner,
                settings,
                config=config,
                shard_size=args.shard_size or 256,
                workers=args.workers,
                supervision=supervision,
                checkpoint_dir=args.checkpoint_dir,
                resume=args.resume,
                model_cache_dir=args.model_cache,
                spill_datasets=args.spill_datasets,
                remote_workers=tuple(args.remote_worker or ()),
                profile_path=shard_profile_path,
            )
        except ShardError as exc:
            print(f"error: {exc}", file=sys.stderr)
            for failure in exc.failures:
                print(f"  {failure.describe()}", file=sys.stderr)
            if args.checkpoint_dir:
                print(
                    f"completed shards are checkpointed in "
                    f"{args.checkpoint_dir!r}; rerun with --resume to "
                    "continue, or add --allow-partial to merge without the "
                    "poison shard",
                    file=sys.stderr,
                )
            return 1
        except ValueError as exc:
            # Stale checkpoint, unwritable directory, bad arguments.
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        result = run_large_scale(dataset, partitioner, settings, config=config)
    if profiler is not None:
        import io
        import os
        import pstats

        profiler.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        merged_worker = False
        if shard_profile_path is not None:
            try:
                if os.path.getsize(shard_profile_path) > 0:
                    stats.add(shard_profile_path)
                    merged_worker = True
            except OSError:
                pass
            os.remove(shard_profile_path)
        stats.strip_dirs().sort_stats("cumulative").print_stats(
            args.profile_top
        )
        scope = (
            "parent + shard-0 worker, merged" if merged_worker else "parent"
        )
        print(
            f"profile ({scope}; top {args.profile_top} by cumulative time):"
        )
        print(buffer.getvalue().rstrip())
    if args.telemetry:
        assert result.telemetry is not None
        meta = {
            "command": "simulate",
            "dataset": args.dataset,
            "model": args.model,
            "policy": args.policy,
            "seed": args.seed,
        }
        if args.faults != "none":
            meta["faults"] = args.faults
        if overload is not None:
            meta["overload"] = args.overload
        if sharded:
            # Only the decomposition goes into the snapshot — never the
            # worker count, so runs with different --workers stay
            # byte-for-byte comparable (the CI smoke `cmp`s them).
            meta["shard_size"] = args.shard_size or 256
        try:
            path = result.telemetry.write(args.telemetry, meta=meta)
        except OSError as exc:
            print(
                f"error: cannot write telemetry snapshot: {exc}",
                file=sys.stderr,
            )
            return 1
        print(f"telemetry snapshot: {path}")
    print(f"dataset: {result.dataset}, model: {result.model}, "
          f"policy: {result.policy}")
    print(f"servers: {result.num_servers}, clients: {result.num_clients}, "
          f"steps: {result.steps}")
    if sharded:
        info = result.extras["sharding"]
        print(f"sharding:           {info['shards']} shards "
              f"(target size {info['shard_size']}), "
              f"{info['workers']} worker(s)")
        if info.get("spill_datasets"):
            print("dataset spill:      on (per-shard subsets streamed "
                  "from disk)")
        if info.get("remote_workers"):
            print(f"remote workers:     "
                  f"{', '.join(info['remote_workers'])}")
        if info.get("retries"):
            print(f"shard retries:      {info['retries']}")
        if info.get("resumed_shards"):
            print(f"resumed shards:     {len(info['resumed_shards'])} "
                  f"of {info['planned_shards']} (from checkpoint)")
        if info.get("failed_shards"):
            print(f"failed shards:      {info['failed_shards']} "
                  f"({info['failed_clients']} clients dropped; "
                  "partial merge)")
    print(f"hit ratio:          {result.hit_ratio:6.2f} "
          f"({result.hits} hits / {result.misses} misses)")
    print(f"cold-start queries: {result.coldstart_queries}")
    print(f"total queries:      {result.total_queries}")
    cache = result.extras.get("partition_cache")
    if cache is not None:
        print(f"plan cache:         {cache['hit_ratio']:6.2%} hit ratio "
              f"({cache['hits']} hits / {cache['misses']} replans)")
    assert result.uplink is not None
    print(f"backhaul peak:      {result.uplink.peak_mbps:.0f} Mbps uplink, "
          f"{result.uplink.total_bytes / 1e9:.2f} GB total")
    if args.faults != "none":
        print(f"faults profile:     {args.faults}")
        print(f"availability:       {result.availability:6.2%}")
        print(f"local fallback:     {result.local_fallback_queries} queries")
        print(f"upload retries:     {result.upload_retries}")
    if overload is not None:
        stats = result.extras.get("overload", {})
        print(f"overload policy:    {args.overload} "
              f"(queue capacity {args.queue_capacity})")
        print(f"offered windows:    {stats.get('offered', 0)} "
              f"({stats.get('admitted', 0)} admitted, "
              f"{stats.get('shed', 0)} shed, "
              f"{stats.get('redirected', 0)} redirected, "
              f"{stats.get('degraded', 0)} degraded)")
        print(f"shed queries:       {result.shed_queries}")
        print(f"redirected queries: {result.redirected_queries}")
        print(f"degraded queries:   {result.degraded_queries}")
        print(f"queue wait p99:     {result.queue_wait_p99 * 1e3:.0f} ms")
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    _print_profiles(sys.stdout)
    return 0


def cmd_shard_worker(args: argparse.Namespace) -> int:
    from repro.simulation.remote import DEFAULT_PORT, serve

    def announce(host: str, port: int) -> None:
        print(f"shard-worker listening on {host}:{port}", flush=True)

    try:
        served = serve(
            args.host,
            DEFAULT_PORT if args.port is None else args.port,
            max_requests=args.max_requests,
            on_ready=announce,
        )
    except OSError as exc:
        print(f"error: cannot listen: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 130
    print(f"shard-worker served {served} request(s)")
    return 0


def cmd_predictors(args: argparse.Namespace) -> int:
    from repro.geo.hexgrid import HexGrid
    from repro.geo.wifi import EdgeServerRegistry
    from repro.mobility.evaluation import evaluate_predictor
    from repro.mobility.markov import MarkovPredictor
    from repro.mobility.modes import ModeAwareSVRPredictor
    from repro.mobility.svr import SVRPredictor

    rng = np.random.default_rng(args.seed)
    dataset = _make_dataset(args.dataset, args.users, args.dataset_steps, args.seed)
    grid = HexGrid(50.0)
    registry = EdgeServerRegistry.from_visited_points(grid, dataset.all_points())
    train, test = dataset.split_users(0.3, rng)
    print(f"{'predictor':<10s} {'top-1 %':>8s} {'top-2 %':>8s} {'MAE m':>7s}")
    for predictor in (
        MarkovPredictor(grid),
        SVRPredictor(rng=rng),
        ModeAwareSVRPredictor(rng=rng),
    ):
        predictor.fit(train)
        accuracy = evaluate_predictor(predictor, test, registry)
        mae = f"{accuracy.mae_meters:7.1f}" if accuracy.mae_meters else "      -"
        print(
            f"{accuracy.predictor:<10s} {accuracy.top_k_accuracy[1]:>8.1f} "
            f"{accuracy.top_k_accuracy[2]:>8.1f} {mae}"
        )
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import run_benchmarks, summary_lines, write_results

    try:
        doc = run_benchmarks(
            quick=args.quick, seed=args.seed, repeats=args.repeats,
            only=args.only,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for line in summary_lines(doc):
        print(line)
    if args.out:
        path = write_results(doc, args.out)
        print(f"wrote {path}")
    return 0


def cmd_telemetry(args: argparse.Namespace) -> int:
    from repro.telemetry import read_snapshot, summarize_snapshot

    try:
        doc = read_snapshot(args.snapshot)
    except FileNotFoundError:
        print(f"error: no such snapshot: {args.snapshot}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for line in summarize_snapshot(doc, top=args.top):
        print(line)
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="PerDNN reproduction experiments"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the evaluation model zoo")

    partition = sub.add_parser("partition", help="partition a model")
    partition.add_argument("--model", default="inception",
                           choices=sorted(ALL_MODELS))
    partition.add_argument("--slowdown", type=float, default=1.0,
                           help="server GPU contention factor (>= 1)")
    partition.add_argument("--verbose", action="store_true",
                           help="print the full upload schedule")

    handoff = sub.add_parser("handoff", help="single-client server change")
    handoff.add_argument("--model", default="inception",
                         choices=sorted(ALL_MODELS))
    handoff.add_argument("--fraction", type=float, default=0.0,
                         help="share of the model migrated ahead (0..1)")
    handoff.add_argument("--queries", type=int, default=40)
    handoff.add_argument("--switch-after", type=int, default=20)

    simulate = sub.add_parser("simulate", help="large-scale simulation")
    simulate.add_argument("--dataset", default="kaist",
                          choices=("kaist", "geolife"))
    simulate.add_argument("--model", default="inception",
                          choices=sorted(ALL_MODELS))
    simulate.add_argument("--policy", default="perdnn",
                          choices=[p.value for p in MigrationPolicy])
    simulate.add_argument("--radius", type=float, default=100.0)
    simulate.add_argument("--hysteresis", type=float, default=0.0,
                          help="handover hysteresis margin in metres")
    simulate.add_argument("--steps", type=positive_int, default=60,
                          help="simulated intervals (cap)")
    simulate.add_argument("--users", type=positive_int, default=20)
    simulate.add_argument("--dataset-steps", type=positive_int, default=300)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--faults", default="none", metavar="PROFILE",
                          help="fault-injection profile (default: none; "
                               "see `repro faults --list`)")
    simulate.add_argument("--overload", default="off",
                          choices=("off", *sorted(p.value for p in SheddingPolicy)),
                          help="overload protection: shedding policy to run "
                               "admission control with (default: off)")
    simulate.add_argument("--queue-capacity", type=positive_int, default=8,
                          help="per-server admission queue capacity "
                               "(with --overload; default: 8)")
    simulate.add_argument("--workers", type=positive_int, default=1,
                          help="worker processes for the sharded runner "
                               "(>1 implies sharding; default: 1)")
    simulate.add_argument("--shard-size", type=positive_int, default=None,
                          help="target clients per spatial shard; setting "
                               "this enables the sharded runner even with "
                               "one worker (default: 256 when sharded)")
    simulate.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                          help="spill each completed shard here and merge "
                               "streamingly from disk (implies sharding)")
    simulate.add_argument("--resume", action="store_true",
                          help="skip shards already completed in "
                               "--checkpoint-dir by an interrupted run "
                               "(settings fingerprint must match)")
    simulate.add_argument("--model-cache", metavar="DIR", default=None,
                          help="cache the trained predictor/estimator "
                               "blob here, keyed by a model fingerprint; "
                               "repeat runs over the same dataset/seed "
                               "skip training (sharded runs only)")
    simulate.add_argument("--spill-datasets", action="store_true",
                          help="spill each shard's trajectory subset to "
                               "disk at plan time and stream results, so "
                               "the parent's memory stays flat in the "
                               "client count (implies sharding)")
    simulate.add_argument("--remote-worker", metavar="HOST:PORT",
                          action="append", default=None,
                          help="dispatch shards to this `repro "
                               "shard-worker` listener as an extra "
                               "supervision slot (repeatable; implies "
                               "sharding; trusted links only — the wire "
                               "protocol is pickle)")
    simulate.add_argument("--profile", type=positive_int, default=None,
                          metavar="N", dest="profile_top",
                          help="run under cProfile and print the top N "
                               "functions by cumulative time (sharded "
                               "multi-worker runs also profile the "
                               "lowest-index shard's worker and merge "
                               "the stats)")
    simulate.add_argument("--allow-partial", action="store_true",
                          help="merge without shards that exhausted their "
                               "retry budget instead of failing the run; "
                               "missing coverage is reported explicitly")
    simulate.add_argument("--shard-attempts", type=positive_int, default=3,
                          help="executions granted per shard before "
                               "quarantine (default: 3)")
    simulate.add_argument("--shard-timeout", type=float, default=None,
                          metavar="SECONDS",
                          help="per-shard wall-clock cap; a shard past it "
                               "is killed and retried (default: none)")
    simulate.add_argument("--chaos-kill", type=float, default=0.0,
                          metavar="RATE",
                          help="chaos testing: per-attempt probability of "
                               "killing the worker process (default: 0)")
    simulate.add_argument("--chaos-hang", type=float, default=0.0,
                          metavar="RATE",
                          help="chaos testing: per-attempt probability of "
                               "hanging the worker (pair with "
                               "--shard-timeout; default: 0)")
    simulate.add_argument("--chaos-seed", type=int, default=0,
                          help="seed of the chaos schedule (default: 0)")
    simulate.add_argument("--chaos-kill-shard", type=int,
                          action="append", metavar="INDEX", default=None,
                          help="kill every attempt of this shard index "
                               "(repeatable); forces quarantine")
    simulate.add_argument("--chaos-max-injections", type=int, default=1,
                          help="sabotaged attempts per shard before the "
                               "chaos schedule lets it through (default: 1)")
    simulate.add_argument("--chaos-hang-seconds", type=float, default=3600.0,
                          help="how long a chaos hang sleeps (default: 3600)")
    simulate.add_argument("--telemetry", metavar="PATH", default=None,
                          help="write the run's telemetry snapshot (JSON)")

    faults = sub.add_parser(
        "faults", help="list built-in fault-injection profiles"
    )
    faults.add_argument("--list", action="store_true",
                        help="list the profiles (the default action)")

    shard_worker = sub.add_parser(
        "shard-worker",
        help="serve remote shard dispatch (pair with simulate "
             "--remote-worker; trusted links only)",
    )
    shard_worker.add_argument("--host", default="127.0.0.1",
                              help="bind address (default: 127.0.0.1)")
    shard_worker.add_argument("--port", type=int, default=None,
                              help="listen port; 0 binds an ephemeral "
                                   "port, printed on startup "
                                   "(default: 7077)")
    shard_worker.add_argument("--max-requests", type=positive_int,
                              default=None,
                              help="exit after serving this many shard "
                                   "attempts (default: serve forever)")

    telemetry = sub.add_parser(
        "telemetry", help="summarize an exported telemetry snapshot"
    )
    telemetry.add_argument("snapshot", help="path to a *.telemetry.json file")
    telemetry.add_argument("--top", type=int, default=10,
                           help="show the N largest counters")

    bench = sub.add_parser(
        "bench", help="time the planner hot paths (perf harness)"
    )
    bench.add_argument("--quick", action="store_true",
                       help="scaled-down workloads for CI smoke runs")
    bench.add_argument("--repeats", type=positive_int, default=None,
                       help="timing repeats per benchmark "
                            "(default: 5, or 3 with --quick)")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--only", metavar="CASE", default=None,
                       help="run a single benchmark case (forest, "
                            "partition, large_scale, large_scale_sharded, "
                            "large_scale_sharded_checkpointed, "
                            "large_scale_sharded_100k, "
                            "large_scale_sharded_1m); the document is "
                            "marked partial")
    bench.add_argument("--out", metavar="PATH", default=None,
                       help="write the BENCH_perf.json document here")

    predictors = sub.add_parser("predictors", help="compare mobility predictors")
    predictors.add_argument("--dataset", default="kaist",
                            choices=("kaist", "geolife"))
    predictors.add_argument("--users", type=positive_int, default=20)
    predictors.add_argument("--dataset-steps", type=positive_int, default=300)
    predictors.add_argument("--seed", type=int, default=0)

    return parser


_COMMANDS = {
    "models": cmd_models,
    "partition": cmd_partition,
    "handoff": cmd_handoff,
    "simulate": cmd_simulate,
    "faults": cmd_faults,
    "shard-worker": cmd_shard_worker,
    "telemetry": cmd_telemetry,
    "bench": cmd_bench,
    "predictors": cmd_predictors,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
