"""Geometry substrate: hexagonal edge-server grids and Wi-Fi registry.

The paper divides the evaluation region into a hexagonal grid of cells with
50 m radius (the service range of a typical Wi-Fi AP) and allocates an edge
server per visited cell; the master server maps predicted locations to
nearby servers through a WiGLE-style Wi-Fi database (§3.B, §4.B.1).
"""

from repro.geo.hexgrid import HexCell, HexGrid
from repro.geo.geometry import BoundingBox, euclidean
from repro.geo.wifi import EdgeServerRegistry

__all__ = [
    "HexCell",
    "HexGrid",
    "BoundingBox",
    "euclidean",
    "EdgeServerRegistry",
]
