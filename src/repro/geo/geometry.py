"""Planar geometry helpers.

All coordinates are metres in a local planar frame (the datasets' lat/lon
rectangles are small enough that the paper's own hex-grid treatment is
planar too).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


def euclidean(a: tuple[float, float], b: tuple[float, float]) -> float:
    """Straight-line distance between two (x, y) points in metres."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned rectangle: the evaluation region of a dataset."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.max_x <= self.min_x or self.max_y <= self.min_y:
            raise ValueError("degenerate bounding box")

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    def contains(self, point: tuple[float, float]) -> bool:
        x, y = point
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def clamp(self, point: tuple[float, float]) -> tuple[float, float]:
        x, y = point
        return (
            min(max(x, self.min_x), self.max_x),
            min(max(y, self.min_y), self.max_y),
        )

    def sample(self, rng: np.random.Generator) -> tuple[float, float]:
        """Uniform random point inside the box."""
        return (
            float(rng.uniform(self.min_x, self.max_x)),
            float(rng.uniform(self.min_y, self.max_y)),
        )
