"""Edge-server registry: the WiGLE-style mapping from locations to servers.

The master server "finds edge servers around the predicted location by
finding nearby hotspots in the Wi-Fi database" (§3.B.2).  In the evaluation
an edge server is allocated to every hex cell any user trajectory visited
(§4.B.1); this registry owns that allocation and answers the two queries the
master needs: *which server serves this location* and *which servers are
within r metres of this location*.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np

from repro.geo.hexgrid import HexCell, HexGrid


class EdgeServerRegistry:
    """Mapping between hex cells, server identifiers, and locations."""

    def __init__(self, grid: HexGrid) -> None:
        self.grid = grid
        self._cell_to_server: dict[HexCell, int] = {}
        self._server_to_cell: dict[int, HexCell] = {}
        # Flat views of every allocated server (centres, cells, ids) in
        # cell-sorted order, built lazily for the vectorized radius query
        # and invalidated whenever a server is allocated.
        self._radius_index: tuple[np.ndarray, list[int]] | None = None

    @classmethod
    def from_visited_points(
        cls, grid: HexGrid, points: Iterable[tuple[float, float]]
    ) -> "EdgeServerRegistry":
        """Allocate one server per cell that any of ``points`` falls in.

        Server ids follow first-seen point order, exactly as the scalar
        per-point loop would assign them (the vectorized path below only
        removes the per-point Python call, not the allocation order).
        """
        registry = cls(grid)
        pts = np.array(
            points if isinstance(points, np.ndarray) else list(points),
            dtype=float,
        ).reshape(-1, 2)
        if pts.shape[0] == 0:
            return registry
        cells = grid.cells_of(pts)
        _, first_seen = np.unique(cells, axis=0, return_index=True)
        for i in np.sort(first_seen):
            registry.ensure_server(HexCell(int(cells[i, 0]), int(cells[i, 1])))
        return registry

    def ensure_server(self, cell: HexCell) -> int:
        """Server id for ``cell``, allocating one if needed."""
        existing = self._cell_to_server.get(cell)
        if existing is not None:
            return existing
        server_id = len(self._cell_to_server)
        self._cell_to_server[cell] = server_id
        self._server_to_cell[server_id] = cell
        self._radius_index = None
        return server_id

    @property
    def num_servers(self) -> int:
        return len(self._cell_to_server)

    @property
    def server_ids(self) -> list[int]:
        return sorted(self._server_to_cell)

    def cell_of_server(self, server_id: int) -> HexCell:
        return self._server_to_cell[server_id]

    def server_location(self, server_id: int) -> tuple[float, float]:
        return self.grid.center(self._server_to_cell[server_id])

    def server_at(self, point: tuple[float, float]) -> int | None:
        """Server covering ``point``'s cell, or None if no server there."""
        return self._cell_to_server.get(self.grid.cell_of(point))

    def servers_for_cells(self, cells: np.ndarray) -> np.ndarray:
        """Vectorized lookup: ``(n, 2)`` axial cells -> ``(n,)`` server ids
        (-1 where the cell has no server).  One dict probe per *distinct*
        cell instead of one per row."""
        cells = np.asarray(cells)
        if cells.ndim != 2 or cells.shape[1] != 2:
            raise ValueError(f"cells must be (n, 2), got {cells.shape}")
        if cells.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        unique, inverse = np.unique(cells, axis=0, return_inverse=True)
        lut = np.fromiter(
            (
                self._cell_to_server.get(HexCell(int(q), int(r)), -1)
                for q, r in unique
            ),
            dtype=np.int64,
            count=unique.shape[0],
        )
        return lut[inverse.reshape(-1)]

    def servers_at_points(self, points: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`server_at` over ``(n, 2)`` points (-1 = none)."""
        return self.servers_for_cells(self.grid.cells_of(points))

    def server_for_cell(self, cell: HexCell) -> int | None:
        return self._cell_to_server.get(cell)

    def _build_radius_index(self) -> tuple[np.ndarray, list[int]]:
        """Centres/ids of every allocated server, sorted by cell ``(q, r)``.

        The sort matches the order :meth:`~repro.geo.hexgrid.HexGrid.cells_within`
        returns cells in, so the vectorized radius query below reproduces
        the reference enumeration order exactly.
        """
        index = self._radius_index
        if index is not None:
            return index
        cells = sorted(self._cell_to_server)
        ids = [self._cell_to_server[cell] for cell in cells]
        if cells:
            centers = np.array(
                [self.grid.center(cell) for cell in cells], dtype=float
            )
        else:
            centers = np.empty((0, 2), dtype=float)
        index = (centers, ids)
        self._radius_index = index
        return index

    def servers_within(
        self, point: tuple[float, float], distance: float
    ) -> list[int]:
        """Ids of allocated servers whose cell centre is within ``distance``.

        Equivalent to scanning :meth:`HexGrid.cells_within` for allocated
        cells (kept as :meth:`_servers_within_reference`), but instead of
        enumerating candidate cells it filters the allocated-server centre
        array: a vectorized squared-distance prefilter with a safety
        margin, then the exact ``math.hypot(...) <= distance`` comparison
        the reference uses on the few survivors.  Same servers, same
        (cell-sorted) order, same float comparisons.
        """
        if distance < 0:
            raise ValueError("distance must be non-negative")
        centers, ids = self._build_radius_index()
        if not ids:
            return []
        x, y = point
        dx = centers[:, 0] - x
        dy = centers[:, 1] - y
        # Superset prefilter: hypot is correctly rounded, so anything it
        # reports within `distance` has squared distance at most a hair
        # above distance**2; the margin covers that hair.
        threshold = (distance * (1.0 + 1e-9)) ** 2 + 1e-9
        candidates = np.nonzero(dx * dx + dy * dy <= threshold)[0]
        return [
            ids[i]
            for i in candidates.tolist()
            if math.hypot(centers[i, 0] - x, centers[i, 1] - y) <= distance
        ]

    def servers_within_batch(
        self,
        points: Sequence[tuple[float, float]],
        distance: float,
        *,
        _chunk_rows: int | None = None,
    ) -> list[list[int]]:
        """:meth:`servers_within` for many points in one array pass.

        Row ``i`` of the result equals ``servers_within(points[i],
        distance)`` exactly — the prefilter runs as one chunked
        ``(points, servers)`` distance-squared matrix, and survivors get
        the same scalar ``math.hypot`` comparison (on the same array
        reads) the per-point query applies.  Used by the proactive
        migration pass, which needs the radius neighbourhood of every
        client's predicted location each interval.
        """
        if distance < 0:
            raise ValueError("distance must be non-negative")
        points = list(points)
        centers, ids = self._build_radius_index()
        if not ids or not points:
            return [[] for _ in points]
        pts = np.asarray(points, dtype=float).reshape(len(points), 2)
        threshold = (distance * (1.0 + 1e-9)) ** 2 + 1e-9
        out: list[list[int]] = []
        # Chunk rows so the candidate matrix stays small regardless of
        # how many points one interval asks about.  ``_chunk_rows`` forces
        # a chunk size (tests pin the boundary behaviour with it).
        chunk = _chunk_rows or max(1, 4_000_000 // max(1, centers.shape[0]))
        cx = centers[:, 0]
        cy = centers[:, 1]
        for start in range(0, pts.shape[0], chunk):
            block = pts[start : start + chunk]
            dx = cx[np.newaxis, :] - block[:, 0][:, np.newaxis]
            dy = cy[np.newaxis, :] - block[:, 1][:, np.newaxis]
            mask = dx * dx + dy * dy <= threshold
            rows, cols = np.nonzero(mask)
            split_at = np.searchsorted(rows, np.arange(1, block.shape[0]))
            for row, candidates in enumerate(np.split(cols, split_at)):
                x, y = block[row, 0], block[row, 1]
                out.append(
                    [
                        ids[i]
                        for i in candidates.tolist()
                        if math.hypot(centers[i, 0] - x, centers[i, 1] - y)
                        <= distance
                    ]
                )
        return out

    def _servers_within_reference(
        self, point: tuple[float, float], distance: float
    ) -> list[int]:
        """Reference radius query: enumerate cells, probe the allocation."""
        servers = []
        for cell in self.grid.cells_within(point, distance):
            server_id = self._cell_to_server.get(cell)
            if server_id is not None:
                servers.append(server_id)
        return servers
