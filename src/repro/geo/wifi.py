"""Edge-server registry: the WiGLE-style mapping from locations to servers.

The master server "finds edge servers around the predicted location by
finding nearby hotspots in the Wi-Fi database" (§3.B.2).  In the evaluation
an edge server is allocated to every hex cell any user trajectory visited
(§4.B.1); this registry owns that allocation and answers the two queries the
master needs: *which server serves this location* and *which servers are
within r metres of this location*.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.geo.hexgrid import HexCell, HexGrid


class EdgeServerRegistry:
    """Mapping between hex cells, server identifiers, and locations."""

    def __init__(self, grid: HexGrid) -> None:
        self.grid = grid
        self._cell_to_server: dict[HexCell, int] = {}
        self._server_to_cell: dict[int, HexCell] = {}

    @classmethod
    def from_visited_points(
        cls, grid: HexGrid, points: Iterable[tuple[float, float]]
    ) -> "EdgeServerRegistry":
        """Allocate one server per cell that any of ``points`` falls in.

        Server ids follow first-seen point order, exactly as the scalar
        per-point loop would assign them (the vectorized path below only
        removes the per-point Python call, not the allocation order).
        """
        registry = cls(grid)
        pts = np.array(
            points if isinstance(points, np.ndarray) else list(points),
            dtype=float,
        ).reshape(-1, 2)
        if pts.shape[0] == 0:
            return registry
        cells = grid.cells_of(pts)
        _, first_seen = np.unique(cells, axis=0, return_index=True)
        for i in np.sort(first_seen):
            registry.ensure_server(HexCell(int(cells[i, 0]), int(cells[i, 1])))
        return registry

    def ensure_server(self, cell: HexCell) -> int:
        """Server id for ``cell``, allocating one if needed."""
        existing = self._cell_to_server.get(cell)
        if existing is not None:
            return existing
        server_id = len(self._cell_to_server)
        self._cell_to_server[cell] = server_id
        self._server_to_cell[server_id] = cell
        return server_id

    @property
    def num_servers(self) -> int:
        return len(self._cell_to_server)

    @property
    def server_ids(self) -> list[int]:
        return sorted(self._server_to_cell)

    def cell_of_server(self, server_id: int) -> HexCell:
        return self._server_to_cell[server_id]

    def server_location(self, server_id: int) -> tuple[float, float]:
        return self.grid.center(self._server_to_cell[server_id])

    def server_at(self, point: tuple[float, float]) -> int | None:
        """Server covering ``point``'s cell, or None if no server there."""
        return self._cell_to_server.get(self.grid.cell_of(point))

    def servers_for_cells(self, cells: np.ndarray) -> np.ndarray:
        """Vectorized lookup: ``(n, 2)`` axial cells -> ``(n,)`` server ids
        (-1 where the cell has no server).  One dict probe per *distinct*
        cell instead of one per row."""
        cells = np.asarray(cells)
        if cells.ndim != 2 or cells.shape[1] != 2:
            raise ValueError(f"cells must be (n, 2), got {cells.shape}")
        if cells.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        unique, inverse = np.unique(cells, axis=0, return_inverse=True)
        lut = np.fromiter(
            (
                self._cell_to_server.get(HexCell(int(q), int(r)), -1)
                for q, r in unique
            ),
            dtype=np.int64,
            count=unique.shape[0],
        )
        return lut[inverse.reshape(-1)]

    def servers_at_points(self, points: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`server_at` over ``(n, 2)`` points (-1 = none)."""
        return self.servers_for_cells(self.grid.cells_of(points))

    def server_for_cell(self, cell: HexCell) -> int | None:
        return self._cell_to_server.get(cell)

    def servers_within(
        self, point: tuple[float, float], distance: float
    ) -> list[int]:
        """Ids of allocated servers whose cell centre is within ``distance``."""
        servers = []
        for cell in self.grid.cells_within(point, distance):
            server_id = self._cell_to_server.get(cell)
            if server_id is not None:
                servers.append(server_id)
        return servers
