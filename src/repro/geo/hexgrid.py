"""Hexagonal grid with 50 m cells — the edge-server layout of §4.B.1.

Cells are pointy-top hexagons addressed by axial coordinates ``(q, r)``;
``radius`` is the circumradius (centre to corner), matching the paper's
"hexagonal grid where each cell has the radius of 50 m".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, order=True)
class HexCell:
    """Axial-coordinate address of one hex cell."""

    q: int
    r: int

    def neighbors(self) -> tuple["HexCell", ...]:
        q, r = self.q, self.r
        return (
            HexCell(q + 1, r),
            HexCell(q - 1, r),
            HexCell(q, r + 1),
            HexCell(q, r - 1),
            HexCell(q + 1, r - 1),
            HexCell(q - 1, r + 1),
        )


class HexGrid:
    """Coordinate conversions for a pointy-top hexagonal grid."""

    def __init__(self, radius: float = 50.0) -> None:
        if radius <= 0:
            raise ValueError("radius must be positive")
        self.radius = radius

    def center(self, cell: HexCell) -> tuple[float, float]:
        """Planar (x, y) centre of a cell in metres."""
        x = self.radius * math.sqrt(3.0) * (cell.q + cell.r / 2.0)
        y = self.radius * 1.5 * cell.r
        return (x, y)

    def cell_of(self, point: tuple[float, float]) -> HexCell:
        """The cell containing (i.e. whose centre is nearest to) ``point``."""
        x, y = point
        q_frac = (math.sqrt(3.0) / 3.0 * x - y / 3.0) / self.radius
        r_frac = (2.0 / 3.0 * y) / self.radius
        return self._axial_round(q_frac, r_frac)

    def cells_of(self, points: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`cell_of`: ``(n, 2)`` points -> ``(n, 2)`` axial
        ``(q, r)`` int64 coordinates.

        Operation-for-operation the same arithmetic as the scalar path
        (same constants, same evaluation order, and ``np.rint`` matches
        Python ``round``'s half-to-even), so the two agree bit-for-bit —
        the fast simulation path depends on that.
        """
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise ValueError(f"points must be (n, 2), got {pts.shape}")
        x = pts[:, 0]
        y = pts[:, 1]
        q = (math.sqrt(3.0) / 3.0 * x - y / 3.0) / self.radius
        r = (2.0 / 3.0 * y) / self.radius
        s = -q - r
        q_round = np.rint(q)
        r_round = np.rint(r)
        s_round = np.rint(s)
        q_diff = np.abs(q_round - q)
        r_diff = np.abs(r_round - r)
        s_diff = np.abs(s_round - s)
        fix_q = (q_diff > r_diff) & (q_diff > s_diff)
        fix_r = ~fix_q & (r_diff > s_diff)
        q_out = np.where(fix_q, -r_round - s_round, q_round)
        r_out = np.where(fix_r, -q_out - s_round, r_round)
        return np.stack([q_out, r_out], axis=1).astype(np.int64)

    @staticmethod
    def _axial_round(q: float, r: float) -> HexCell:
        # Round in cube coordinates, fixing the component with largest error.
        s = -q - r
        q_round, r_round, s_round = round(q), round(r), round(s)
        q_diff = abs(q_round - q)
        r_diff = abs(r_round - r)
        s_diff = abs(s_round - s)
        if q_diff > r_diff and q_diff > s_diff:
            q_round = -r_round - s_round
        elif r_diff > s_diff:
            r_round = -q_round - s_round
        return HexCell(int(q_round), int(r_round))

    @staticmethod
    def hop_distance(a: HexCell, b: HexCell) -> int:
        """Number of cell-to-cell hops between two cells (cube distance).

        Used as the backhaul hop count when a client's queries are routed
        from its access cell to a remote serving cell (§3.A's routing
        alternative).
        """
        dq = a.q - b.q
        dr = a.r - b.r
        return int((abs(dq) + abs(dr) + abs(dq + dr)) / 2)

    def center_distance(self, a: HexCell, b: HexCell) -> float:
        """Euclidean distance between two cell centres (metres)."""
        ax, ay = self.center(a)
        bx, by = self.center(b)
        return math.hypot(ax - bx, ay - by)

    def cells_within(
        self, point: tuple[float, float], distance: float
    ) -> list[HexCell]:
        """All cells whose centre lies within ``distance`` of ``point``.

        Used to find the edge servers near a predicted location (§3.C.2:
        proactive migration targets all servers within 50 or 100 m).
        """
        if distance < 0:
            raise ValueError("distance must be non-negative")
        origin = self.cell_of(point)
        # Ring bound: centres at hex-hop k are at least 1.5*radius*k away
        # (the apothem of the hop-k ring), and ``point`` sits at most one
        # circumradius from its cell centre — the +1 covers that.
        rings = int(math.ceil(distance / (1.5 * self.radius))) + 1
        x, y = point
        found: list[HexCell] = []
        for dq in range(-rings, rings + 1):
            for dr in range(-rings, rings + 1):
                if abs(dq + dr) > rings:
                    continue
                cell = HexCell(origin.q + dq, origin.r + dr)
                cx, cy = self.center(cell)
                if math.hypot(cx - x, cy - y) <= distance:
                    found.append(cell)
        return sorted(found)
